package pipeline

import (
	"context"
	"testing"

	"svf/internal/bpred"
	"svf/internal/cache"
	"svf/internal/core"
	"svf/internal/isa"
	"svf/internal/regions"
	"svf/internal/stackcache"
	"svf/internal/trace"
)

// tinyMachine is a 2-wide machine that makes resource effects visible.
func tinyMachine() MachineConfig {
	return MachineConfig{
		Name: "tiny", Width: 2, IFQSize: 8, RUUSize: 16, LSQSize: 8,
		IntALU: 4, IntMult: 1, ALULat: 1, MultLat: 3,
		DL1Ports: 1, StoreForwardLat: 3, MispredictPenalty: 3, SquashPenalty: 4,
	}
}

func testEnv(t *testing.T, mc MachineConfig, policy StackPolicy, stackPorts int) Env {
	t.Helper()
	hier := cache.MustNewHierarchy(cache.DefaultHierarchyConfig())
	env := Env{Machine: mc, Hier: hier, Pred: bpred.NewPerfect(), Layout: regions.DefaultLayout()}
	switch policy {
	case PolicySVF:
		env.Stack = StackStructs{Policy: policy, SVF: core.MustNew(core.Config{SizeBytes: 8 << 10}, hier.DL1), Ports: stackPorts}
	case PolicyStackCache:
		env.Stack = StackStructs{Policy: policy, SC: stackcache.MustNew(stackcache.Config{SizeBytes: 8 << 10}, hier.UL2), Ports: stackPorts}
	}
	return env
}

func run(t *testing.T, env Env, insts []isa.Inst) Stats {
	t.Helper()
	// Micro-traces use fresh PCs; warm the IL1 so compulsory
	// instruction misses do not swamp the effects under test.
	for i := range insts {
		env.Hier.IL1.Access(insts[i].PC, false)
	}
	p, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(context.Background(), trace.NewSliceStream(insts), uint64(len(insts)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != uint64(len(insts)) {
		t.Fatalf("committed %d of %d instructions", st.Committed, len(insts))
	}
	return st
}

// mkALU builds a chain-free ALU op.
func mkALU(pc uint64, dst, src uint8) isa.Inst {
	return isa.Inst{PC: pc, Kind: isa.KindALU, Dst: dst, Src1: src, Src2: isa.RegZero}
}

const stackTop = uint64(0x11_fe00_0000)

func TestIndependentALUThroughput(t *testing.T) {
	// 100 independent ALU ops on a 2-wide machine: ~50 cycles + pipe fill.
	var insts []isa.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, mkALU(0x1000+uint64(i*4), uint8(1+i%10), isa.RegZero))
	}
	st := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st.Cycles < 50 || st.Cycles > 70 {
		t.Errorf("cycles = %d, want ~50-70 for width-2", st.Cycles)
	}
}

func TestSerialChainLatencyBound(t *testing.T) {
	// A fully serial chain cannot beat 1 IPC regardless of width.
	var insts []isa.Inst
	for i := 0; i < 100; i++ {
		insts = append(insts, mkALU(0x1000+uint64(i*4), 1, 1))
	}
	st := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st.Cycles < 100 {
		t.Errorf("serial chain finished in %d cycles; dependencies not honoured", st.Cycles)
	}
}

func TestMultLatency(t *testing.T) {
	// Serial multiplies: ~MultLat cycles each.
	var insts []isa.Inst
	for i := 0; i < 20; i++ {
		insts = append(insts, isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindMult, Dst: 1, Src1: 1, Src2: isa.RegZero})
	}
	st := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st.Cycles < 60 {
		t.Errorf("20 serial multiplies in %d cycles, want >= 60 (3 each)", st.Cycles)
	}
}

func TestDL1PortThrottling(t *testing.T) {
	// Independent loads to distinct hot lines: throughput bounded by the
	// single DL1 port, so >= 1 cycle per load.
	warm := []isa.Inst{}
	var insts []isa.Inst
	for i := 0; i < 64; i++ {
		addr := uint64(0x1_4000_0000 + (i%4)*8) // few hot lines
		in := isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindLoad, Dst: uint8(1 + i%8), Src1: 27, Base: 27, Addr: addr, Size: 8}
		insts = append(insts, in)
	}
	_ = warm
	// Width 6 so issue bandwidth (AGEN costs a second slot) is not the
	// binding resource; the single DL1 port must be.
	wide := tinyMachine()
	wide.Width = 6
	wide.IFQSize = 24
	wide.RUUSize = 48
	one := run(t, testEnv(t, wide, PolicyNone, 0), insts)
	wide2 := wide
	wide2.DL1Ports = 2
	two := run(t, testEnv(t, wide2, PolicyNone, 0), insts)
	if one.Cycles <= two.Cycles {
		t.Errorf("doubling DL1 ports did not help: %d vs %d cycles", one.Cycles, two.Cycles)
	}
	if one.DL1PortConflicts == 0 {
		t.Error("expected port conflicts with 1 port")
	}
}

func TestStoreForwarding(t *testing.T) {
	// A load reading an in-flight store's address forwards from the LSQ.
	addr := uint64(0x1_4000_0100)
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindStore, Src1: 1, Src2: 27, Base: 27, Addr: addr, Size: 8, Dst: isa.RegZero},
		{PC: 0x1004, Kind: isa.KindLoad, Dst: 2, Src1: 27, Base: 27, Addr: addr, Size: 8},
	}
	st := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st.Forwards != 1 {
		t.Errorf("Forwards = %d, want 1", st.Forwards)
	}
}

// wrongPredictor always predicts the opposite of the actual outcome.
type wrongPredictor struct{}

func (wrongPredictor) Predict(pc uint64, actual bool) bool { return !actual }
func (wrongPredictor) Update(pc uint64, actual bool)       {}
func (wrongPredictor) Name() string                        { return "wrong" }

func TestBranchMispredictBubbles(t *testing.T) {
	var insts []isa.Inst
	for i := 0; i < 40; i++ {
		if i%4 == 3 {
			insts = append(insts, isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindBranch, Src1: 1, Dst: isa.RegZero, Addr: 0x1000 + uint64(i*4) + 4})
		} else {
			insts = append(insts, mkALU(0x1000+uint64(i*4), uint8(1+i%8), isa.RegZero))
		}
	}
	env := testEnv(t, tinyMachine(), PolicyNone, 0)
	perfect := run(t, env, insts)

	env2 := testEnv(t, tinyMachine(), PolicyNone, 0)
	env2.Pred = wrongPredictor{}
	wrong := run(t, env2, insts)
	if wrong.Mispredicts != 10 {
		t.Errorf("mispredicts = %d, want 10", wrong.Mispredicts)
	}
	if wrong.Cycles <= perfect.Cycles {
		t.Errorf("mispredictions should cost cycles: %d vs %d", wrong.Cycles, perfect.Cycles)
	}
	if perfect.Mispredicts != 0 {
		t.Error("perfect predictor mispredicted")
	}
}

// svfTestTrace builds: sp -= 64; store 8($sp); load 8($sp); … repeated.
func svfTestTrace(n int) []isa.Inst {
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -64, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate},
	}
	sp := stackTop - 64
	for i := 0; i < n; i++ {
		off := int32(8 * (i % 8))
		pc := 0x1004 + uint64(i*8)
		insts = append(insts,
			isa.Inst{PC: pc, Kind: isa.KindStore, Src1: uint8(1 + i%4), Base: isa.RegSP, Imm: off, Addr: sp + uint64(off), Size: 8, Dst: isa.RegZero},
			isa.Inst{PC: pc + 4, Kind: isa.KindLoad, Dst: uint8(5 + i%4), Base: isa.RegSP, Imm: off, Addr: sp + uint64(off), Size: 8},
		)
	}
	return insts
}

func TestSVFMorphingBypassesDL1(t *testing.T) {
	insts := svfTestTrace(50)
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.SVFRefs != 100 {
		t.Errorf("SVFRefs = %d, want 100 (all stack refs morph)", st.SVFRefs)
	}
	if st.DL1Refs != 0 {
		t.Errorf("DL1Refs = %d, want 0", st.DL1Refs)
	}
	svf := env.Stack.SVF.Stats()
	if svf.MorphedRefs() != 100 || svf.ReroutedRefs() != 0 {
		t.Errorf("SVF counters: %+v", svf)
	}
	// No demand fills: every location is stored before loaded.
	if svf.Fills != 0 {
		t.Errorf("fills = %d, want 0", svf.Fills)
	}
}

func TestSVFFasterThanBaselineOnStackChains(t *testing.T) {
	insts := svfTestTrace(200)
	base := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	svf := run(t, testEnv(t, tinyMachine(), PolicySVF, 2), insts)
	if svf.Cycles >= base.Cycles {
		t.Errorf("SVF (%d cycles) should beat baseline (%d) on stack-heavy code", svf.Cycles, base.Cycles)
	}
}

func TestRerouting(t *testing.T) {
	// A $gpr-addressed load to an in-window stack address reroutes into
	// the SVF.
	sp := stackTop - 64
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -64, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate},
		{PC: 0x1004, Kind: isa.KindStore, Src1: 1, Base: isa.RegSP, Imm: 16, Addr: sp + 16, Size: 8, Dst: isa.RegZero},
		{PC: 0x1008, Kind: isa.KindLoad, Dst: 2, Base: 27, Src1: 27, Addr: sp + 16, Size: 8},
	}
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.SVFRefs != 3-1 {
		t.Errorf("SVFRefs = %d, want 2", st.SVFRefs)
	}
	svf := env.Stack.SVF.Stats()
	if svf.ReroutedRefs() == 0 && st.Forwards == 0 {
		t.Error("gpr load to window should reroute or forward")
	}
}

func TestSquashOnGprStoreSpLoadCollision(t *testing.T) {
	// store via $gpr to X; then $sp-relative load of X: the morphed load
	// would read a stale SVF value → squash (§3.2).
	sp := stackTop - 64
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -64, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate},
		{PC: 0x1004, Kind: isa.KindStore, Src1: 1, Base: 27, Src2: 27, Addr: sp + 24, Size: 8, Dst: isa.RegZero},
		{PC: 0x1008, Kind: isa.KindLoad, Dst: 2, Base: isa.RegSP, Imm: 24, Addr: sp + 24, Size: 8},
	}
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.Squashes != 1 {
		t.Errorf("Squashes = %d, want 1", st.Squashes)
	}

	// With the no_squash code generator, the collision costs no flush.
	mc := tinyMachine()
	mc.NoSquash = true
	env2 := testEnv(t, mc, PolicySVF, 2)
	st2 := run(t, env2, insts)
	if st2.Squashes != 1 {
		t.Errorf("collision still detected, got %d", st2.Squashes)
	}
	if st2.Cycles > st.Cycles {
		t.Errorf("no_squash (%d cycles) should not be slower than squashing (%d)", st2.Cycles, st.Cycles)
	}
}

func TestDecodeInterlockOnComputedSP(t *testing.T) {
	// A non-immediate $sp update stalls decode until it resolves (§3.1).
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -64, Dst: isa.RegSP, Src1: isa.RegSP, Src2: 1}, // computed
	}
	for i := 0; i < 20; i++ {
		insts = append(insts, mkALU(0x1004+uint64(i*4), uint8(1+i%8), isa.RegZero))
	}
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.Interlocks == 0 {
		t.Error("computed $sp update should interlock decode under the SVF")
	}
	// The baseline needs no interlock.
	st2 := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st2.Interlocks != 0 {
		t.Errorf("baseline interlocked %d times", st2.Interlocks)
	}
}

func TestStackCacheRouting(t *testing.T) {
	insts := svfTestTrace(50)
	env := testEnv(t, tinyMachine(), PolicyStackCache, 2)
	st := run(t, env, insts)
	if st.StackRefs == 0 {
		t.Error("stack cache received no references")
	}
	if st.SVFRefs != 0 {
		t.Error("SVF refs counted in a stack-cache run")
	}
}

func TestContextSwitchPeriod(t *testing.T) {
	insts := svfTestTrace(300) // 601 instructions
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	env.CtxSwitchPeriod = 100
	st := run(t, env, insts)
	if st.CtxSwitches != 6 {
		t.Errorf("CtxSwitches = %d, want 6", st.CtxSwitches)
	}
	if got := env.Stack.SVF.Stats().CtxSwitches; got != 6 {
		t.Errorf("SVF saw %d switches", got)
	}
}

func TestRUUFullStalls(t *testing.T) {
	// A long-latency head (serial mult chain) with a tiny RUU must
	// produce window-full stalls.
	var insts []isa.Inst
	for i := 0; i < 30; i++ {
		insts = append(insts, isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindMult, Dst: 1, Src1: 1})
	}
	for i := 0; i < 100; i++ {
		insts = append(insts, mkALU(0x2000+uint64(i*4), uint8(2+i%8), isa.RegZero))
	}
	st := run(t, testEnv(t, tinyMachine(), PolicyNone, 0), insts)
	if st.RUUFullStalls == 0 {
		t.Error("expected RUU-full stalls")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*MachineConfig){
		func(m *MachineConfig) { m.Width = 0 },
		func(m *MachineConfig) { m.IFQSize = 1 },
		func(m *MachineConfig) { m.RUUSize = 2 },
		func(m *MachineConfig) { m.LSQSize = 1 },
		func(m *MachineConfig) { m.IntALU = 0 },
		func(m *MachineConfig) { m.DL1Ports = 0 },
		func(m *MachineConfig) { m.ALULat = 0 },
	}
	for i, mut := range bad {
		mc := tinyMachine()
		mut(&mc)
		if err := mc.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
	if err := SixteenWide().Validate(); err != nil {
		t.Errorf("SixteenWide invalid: %v", err)
	}
}

func TestTable2Presets(t *testing.T) {
	for _, c := range []struct {
		mc                   MachineConfig
		width, ruu, lsq, ifq int
	}{
		{FourWide(), 4, 64, 32, 16},
		{EightWide(), 8, 128, 64, 32},
		{SixteenWide(), 16, 256, 128, 64},
	} {
		if c.mc.Width != c.width || c.mc.RUUSize != c.ruu || c.mc.LSQSize != c.lsq || c.mc.IFQSize != c.ifq {
			t.Errorf("%s: %+v does not match Table 2", c.mc.Name, c.mc)
		}
		if c.mc.IntALU != 16 || c.mc.IntMult != 4 {
			t.Errorf("%s: FU pools do not match Table 2", c.mc.Name)
		}
		if c.mc.StoreForwardLat != 3 {
			t.Errorf("%s: store forwarding %d, want 3", c.mc.Name, c.mc.StoreForwardLat)
		}
	}
}

func TestNewValidation(t *testing.T) {
	env := testEnv(t, tinyMachine(), PolicyNone, 0)
	env.Hier = nil
	if _, err := New(env); err == nil {
		t.Error("nil hierarchy should fail")
	}
	env = testEnv(t, tinyMachine(), PolicyNone, 0)
	env.Pred = nil
	if _, err := New(env); err == nil {
		t.Error("nil predictor should fail")
	}
	env = testEnv(t, tinyMachine(), PolicyNone, 0)
	env.Stack.Policy = PolicySVF // without an SVF
	if _, err := New(env); err == nil {
		t.Error("SVF policy without SVF should fail")
	}
	env = testEnv(t, tinyMachine(), PolicyNone, 0)
	env.Stack.Policy = PolicyStackCache
	if _, err := New(env); err == nil {
		t.Error("stack-cache policy without cache should fail")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyNone.String() != "baseline" || PolicySVF.String() != "svf" || PolicyStackCache.String() != "stackcache" {
		t.Error("policy names wrong")
	}
}

func TestIPC(t *testing.T) {
	s := Stats{Cycles: 100, Committed: 250}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %g", s.IPC())
	}
	if (Stats{}).IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}
