package pipeline

import (
	"context"
	"testing"

	"svf/internal/bpred"
	"svf/internal/cache"
	"svf/internal/core"
	"svf/internal/isa"
	"svf/internal/regions"
	"svf/internal/trace"
)

func TestShortStreamTerminates(t *testing.T) {
	// Run with maxInsts far beyond the stream: the pipeline must drain
	// and stop rather than spin.
	insts := []isa.Inst{mkALU(0x1000, 1, isa.RegZero), mkALU(0x1004, 2, 1)}
	env := testEnv(t, tinyMachine(), PolicyNone, 0)
	p, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(context.Background(), trace.NewSliceStream(insts), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 2 {
		t.Errorf("committed %d, want 2", st.Committed)
	}
}

func TestEmptyStream(t *testing.T) {
	env := testEnv(t, tinyMachine(), PolicyNone, 0)
	p, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Run(context.Background(), trace.NewSliceStream(nil), 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Committed != 0 {
		t.Errorf("committed %d from an empty stream", st.Committed)
	}
}

func TestAGENConsumesALUAndIssueSlot(t *testing.T) {
	// Loads requiring address generation consume 2 issue slots; at
	// width 2 that caps memory throughput at 1/cycle even with many
	// ports, while morphing restores 2/cycle.
	sp := stackTop - 256
	var insts []isa.Inst
	insts = append(insts, isa.Inst{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -256, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate})
	for i := 0; i < 16; i++ {
		off := int32(8 * (i % 32))
		insts = append(insts, isa.Inst{PC: 0x1004 + uint64(i*4), Kind: isa.KindStore, Src1: 1, Base: isa.RegSP, Imm: off, Addr: sp + uint64(off), Size: 8, Dst: isa.RegZero})
	}
	for i := 0; i < 200; i++ {
		off := int32(8 * (i % 32))
		insts = append(insts, isa.Inst{PC: 0x2000 + uint64(i*4), Kind: isa.KindLoad, Dst: uint8(1 + i%8), Base: isa.RegSP, Imm: off, Addr: sp + uint64(off), Size: 8})
	}
	mc := tinyMachine()
	mc.DL1Ports = 4 // ports generous; issue slots are the cap
	base := run(t, testEnv(t, mc, PolicyNone, 0), insts)
	svf := run(t, testEnv(t, mc, PolicySVF, 4), insts)
	if base.Cycles < 200 {
		t.Errorf("baseline %d cycles; AGEN slots should cap loads at ~1/cycle", base.Cycles)
	}
	if svf.Cycles >= base.Cycles {
		t.Errorf("morphing (%d cycles) should beat AGEN-bound baseline (%d)", svf.Cycles, base.Cycles)
	}
}

func TestNoMorphTreatsEverythingRerouted(t *testing.T) {
	insts := svfTestTrace(50)
	mc := tinyMachine()
	mc.NoMorph = true
	env := testEnv(t, mc, PolicySVF, 2)
	run(t, env, insts)
	st := env.Stack.SVF.Stats()
	if st.MorphedRefs() != 0 {
		t.Errorf("NoMorph still morphed %d refs", st.MorphedRefs())
	}
	if st.ReroutedRefs() == 0 {
		t.Error("NoMorph should reroute everything")
	}
}

func TestMorphedStoresDontStallOnPorts(t *testing.T) {
	// A store-only stack burst through a 1-port SVF: morphed stores use
	// the banked write path at half-port cost, so throughput stays close
	// to the width bound rather than 1 store/cycle.
	sp := stackTop - 256
	var insts []isa.Inst
	insts = append(insts, isa.Inst{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -256, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate})
	for i := 0; i < 100; i++ {
		off := int32(8 * (i % 32))
		insts = append(insts, isa.Inst{PC: 0x1004 + uint64(i*4), Kind: isa.KindStore, Src1: uint8(1 + i%4), Base: isa.RegSP, Imm: off, Addr: sp + uint64(off), Size: 8, Dst: isa.RegZero})
	}
	one := run(t, testEnv(t, tinyMachine(), PolicySVF, 1), insts)
	if one.Cycles > 90 {
		t.Errorf("store burst took %d cycles through 1 SVF port; banked stores should not serialise", one.Cycles)
	}
}

func TestSPRelativeOutsideWindowGoesToDL1(t *testing.T) {
	// An $sp+imm reference beyond the SVF window is an ordinary cache
	// reference (bounds check fails).
	sp := stackTop - 64
	farOff := int32(16 << 10) // 16KB beyond an 8KB window
	insts := []isa.Inst{
		{PC: 0x1000, Kind: isa.KindSPAdjust, Imm: -64, Dst: isa.RegSP, Src1: isa.RegSP, Flags: isa.FlagSPImmediate},
		{PC: 0x1004, Kind: isa.KindLoad, Dst: 1, Base: isa.RegSP, Imm: farOff, Addr: sp + uint64(farOff), Size: 8},
	}
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.DL1Refs != 1 {
		t.Errorf("DL1Refs = %d, want 1 (out-of-window stack ref)", st.DL1Refs)
	}
	if st.SVFRefs != 0 {
		t.Errorf("SVFRefs = %d, want 0", st.SVFRefs)
	}
}

func TestStackCacheContextSwitchFlushes(t *testing.T) {
	insts := svfTestTrace(200)
	env := testEnv(t, tinyMachine(), PolicyStackCache, 2)
	env.CtxSwitchPeriod = 100
	st := run(t, env, insts)
	if st.CtxSwitches == 0 {
		t.Fatal("no context switches")
	}
	if env.Stack.SC.CtxSwitches() != st.CtxSwitches {
		t.Errorf("stack cache saw %d switches, pipeline %d", env.Stack.SC.CtxSwitches(), st.CtxSwitches)
	}
	if env.Stack.SC.CtxSwitchBytes() == 0 {
		t.Error("dirty stack lines should flush on context switches")
	}
}

func TestIFQBacklogBound(t *testing.T) {
	// Fetch cannot run ahead of dispatch by more than the IFQ size:
	// a serial mult chain throttles dispatch; fetched-but-not-committed
	// can never exceed IFQ+RUU.
	var insts []isa.Inst
	for i := 0; i < 60; i++ {
		insts = append(insts, isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindMult, Dst: 1, Src1: 1})
	}
	env := testEnv(t, tinyMachine(), PolicyNone, 0)
	p, err := New(env)
	if err != nil {
		t.Fatal(err)
	}
	stream := trace.NewSliceStream(insts)
	if _, err := p.Run(context.Background(), stream, uint64(len(insts))); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Fetched != uint64(len(insts)) {
		t.Errorf("fetched %d, want %d", st.Fetched, len(insts))
	}
}

func TestSquashOnlyForGprStores(t *testing.T) {
	// An $sp store followed by an $sp load of the same address is the
	// normal renamed path — never a squash.
	insts := svfTestTrace(100)
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.Squashes != 0 {
		t.Errorf("sp-store/sp-load pattern squashed %d times", st.Squashes)
	}
}

func TestMispredictedBranchRedirectsAfterIssue(t *testing.T) {
	// The fetch stall ends only when the mispredicted branch resolves:
	// putting it behind a long dependence chain must lengthen the stall.
	mkChain := func(depth int) []isa.Inst {
		var insts []isa.Inst
		for i := 0; i < depth; i++ {
			insts = append(insts, isa.Inst{PC: 0x1000 + uint64(i*4), Kind: isa.KindMult, Dst: 1, Src1: 1})
		}
		insts = append(insts, isa.Inst{PC: 0x5000, Kind: isa.KindBranch, Src1: 1, Dst: isa.RegZero, Addr: 0x5004})
		for i := 0; i < 40; i++ {
			insts = append(insts, mkALU(0x6000+uint64(i*4), uint8(2+i%8), isa.RegZero))
		}
		return insts
	}
	envShort := testEnv(t, tinyMachine(), PolicyNone, 0)
	envShort.Pred = wrongPredictor{}
	short := run(t, envShort, mkChain(2))
	envLong := testEnv(t, tinyMachine(), PolicyNone, 0)
	envLong.Pred = wrongPredictor{}
	long := run(t, envLong, mkChain(12))
	// The long chain delays branch resolution by ~30 mult cycles; the
	// post-branch block must finish correspondingly later.
	if long.Cycles < short.Cycles+20 {
		t.Errorf("late-resolving branch: %d vs %d cycles; resolution timing not modelled", long.Cycles, short.Cycles)
	}
}

func TestStatsRouting(t *testing.T) {
	// Mixed trace: counts must partition MemRefs exactly.
	insts := svfTestTrace(30)
	heap := uint64(0x1_8000_0000)
	for i := 0; i < 10; i++ {
		insts = append(insts, isa.Inst{PC: 0x9000 + uint64(i*4), Kind: isa.KindLoad, Dst: 1, Base: 27, Src1: 27, Addr: heap + uint64(i*64), Size: 8})
	}
	env := testEnv(t, tinyMachine(), PolicySVF, 2)
	st := run(t, env, insts)
	if st.MemRefs != st.DL1Refs+st.StackRefs+st.SVFRefs {
		t.Errorf("mem refs %d != dl1 %d + stack %d + svf %d", st.MemRefs, st.DL1Refs, st.StackRefs, st.SVFRefs)
	}
	if st.DL1Refs != 10 {
		t.Errorf("DL1Refs = %d, want 10 heap loads", st.DL1Refs)
	}
}

func cacheHier(t *testing.T) *cache.Hierarchy {
	t.Helper()
	return cache.MustNewHierarchy(cache.DefaultHierarchyConfig())
}

func coreMustNew(t *testing.T, size, banks int, h *cache.Hierarchy) *core.SVF {
	t.Helper()
	return core.MustNew(core.Config{SizeBytes: size, Banks: banks}, h.DL1)
}

func perfectPred() Predictor { return bpred.NewPerfect() }

func defaultLayout() regions.Layout { return regions.DefaultLayout() }

func TestBankedSVF(t *testing.T) {
	// Accesses to distinct words spread across banks issue in parallel;
	// same-bank accesses conflict.
	hier := cacheHier(t)
	svf4 := coreMustNew(t, 8<<10, 4, hier)
	env := Env{Machine: tinyMachine(), Hier: hier, Pred: perfectPred(), Layout: defaultLayout(),
		Stack: StackStructs{Policy: PolicySVF, SVF: svf4, Ports: 1}}
	insts := svfTestTrace(100)
	st := run(t, env, insts)
	if st.SVFRefs == 0 {
		t.Fatal("no SVF refs")
	}

	// One bank = strictly serialised SVF accesses: must be slower.
	hier1 := cacheHier(t)
	svf1 := coreMustNew(t, 8<<10, 1, hier1)
	env1 := Env{Machine: tinyMachine(), Hier: hier1, Pred: perfectPred(), Layout: defaultLayout(),
		Stack: StackStructs{Policy: PolicySVF, SVF: svf1, Ports: 1}}
	st1 := run(t, env1, insts)
	if st1.Cycles < st.Cycles {
		t.Errorf("1-bank SVF (%d cycles) beat 4-bank (%d)", st1.Cycles, st.Cycles)
	}
	if st1.StackPortConflicts == 0 {
		t.Error("single bank should conflict")
	}
}
