// Package plot renders the reproduction's figures as standalone SVG files:
// line charts for the characterisation curves (Figures 2 and 3) and grouped
// bar charts for the speedup figures (Figures 5-9). It is deliberately
// minimal — stdlib only, one axis per chart, a fixed categorical palette
// assigned in a validated order, thin marks, recessive grid, and a legend
// whenever more than one series is shown.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// The categorical palette (light mode), in its fixed CVD-validated order.
// Hues are assigned to series by position and never cycled; charts with
// more series than slots must fold the tail into "other".
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Surface and ink tokens.
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e7e6e2"
	axisColor     = "#b9b8b2"
)

// MaxSeries is the number of distinguishable series a chart accepts.
const MaxSeries = len("12345678")

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// LineChart describes a single-axis line chart.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height default to 720x420.
	Width, Height int
	Series        []Series
	// LogX plots x on a log10 scale (Figure 3's offset axis).
	LogX bool
}

// BarGroup is one series of a grouped bar chart: one value per category.
type BarGroup struct {
	Name   string
	Values []float64
}

// BarChart describes a single-axis grouped bar chart.
type BarChart struct {
	Title      string
	YLabel     string
	Width      int
	Height     int
	Categories []string
	Groups     []BarGroup
}

const (
	defaultW   = 720
	defaultH   = 420
	marginL    = 64
	marginR    = 16
	marginTop  = 40
	marginBot  = 72
	legendRowH = 16
)

// niceTicks returns ~n round-valued ticks spanning [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi <= lo {
		hi = lo + 1
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch norm := raw / mag; {
	case norm < 1.5:
		step = mag
	case norm < 3:
		step = 2 * mag
	case norm < 7:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Floor(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/2; v += step {
		if v >= lo-step/2 {
			ticks = append(ticks, v)
		}
	}
	return ticks
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1_000_000:
		return fmt.Sprintf("%.3gM", v/1_000_000)
	case av >= 10_000:
		return fmt.Sprintf("%.3gk", v/1000)
	case av == math.Trunc(av):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) elem(format string, args ...any) {
	fmt.Fprintf(b, format, args...)
	b.WriteString("\n")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func header(b *svgBuilder, w, h int, title string) {
	b.elem(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="%s">`, w, h, w, h, esc(title))
	b.elem(`<rect width="%d" height="%d" fill="%s"/>`, w, h, surface)
	b.elem(`<text x="%d" y="22" font-family="sans-serif" font-size="14" fill="%s">%s</text>`, marginL, textPrimary, esc(title))
}

// legend draws one row of swatch+name entries; callers position it with a
// transform. Charts with a single series skip it (the title names the
// series).
func legend(b *svgBuilder, names []string, w int) {
	if len(names) < 2 {
		return
	}
	x := marginL
	for i, name := range names {
		color := seriesColors[i%len(seriesColors)]
		b.elem(`<rect x="%d" y="-10" width="10" height="10" rx="2" fill="%s"/>`, x, color)
		b.elem(`<text x="%d" y="0" font-family="sans-serif" font-size="11" fill="%s">%s</text>`, x+14, textSecondary, esc(name))
		x += 14 + 8*len(name) + 18
		if x > w-marginR {
			break // clip overlong legends rather than overflow
		}
	}
}

// SVG renders the line chart.
func (c LineChart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = defaultW
	}
	if h == 0 {
		h = defaultH
	}
	plotW := w - marginL - marginR
	plotH := h - marginTop - marginBot

	// Data extents. NaN points — failed experiment cells — are skipped
	// here and rendered as line gaps below.
	lo, hi := math.Inf(1), math.Inf(-1)
	xlo, xhi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			xlo, xhi = math.Min(xlo, x), math.Max(xhi, x)
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		xlo, xhi, lo, hi = 0, 1, 0, 1
	}
	if lo > 0 {
		lo = 0 // anchor magnitude axes at zero
	}
	yTicks := niceTicks(lo, hi, 5)
	hi = math.Max(hi, yTicks[len(yTicks)-1])

	sx := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(math.Max(x, 1e-9))
		}
		if xhi == xlo {
			return float64(marginL)
		}
		return float64(marginL) + (x-xlo)/(xhi-xlo)*float64(plotW)
	}
	sy := func(y float64) float64 {
		return float64(marginTop) + (1-(y-lo)/(hi-lo))*float64(plotH)
	}

	var b svgBuilder
	header(&b, w, h, c.Title)

	// Grid + y ticks.
	for _, t := range yTicks {
		y := sy(t)
		b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`, marginL, y, w-marginR, y, gridColor)
		b.elem(`<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10" fill="%s">%s</text>`, marginL-6, y+3, textSecondary, formatTick(t))
	}
	// X ticks.
	for _, t := range niceTicks(xlo, xhi, 6) {
		xv := t
		label := formatTick(t)
		if c.LogX {
			label = formatTick(math.Pow(10, t))
		}
		x := float64(marginL)
		if xhi != xlo {
			x = float64(marginL) + (xv-xlo)/(xhi-xlo)*float64(plotW)
		}
		b.elem(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1"/>`, x, marginTop+plotH, x, marginTop+plotH+4, axisColor)
		b.elem(`<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="10" fill="%s">%s</text>`, x, marginTop+plotH+16, textSecondary, esc(label))
	}
	// Axes.
	b.elem(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`, marginL, marginTop, marginL, marginTop+plotH, axisColor)
	b.elem(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`, marginL, marginTop+plotH, w-marginR, marginTop+plotH, axisColor)

	// Series polylines (2px, thin marks). A NaN point breaks the line into
	// separate segments, so a failed cell reads as a gap rather than an
	// interpolated value.
	for i, s := range c.Series {
		color := seriesColors[i%len(seriesColors)]
		var pts []string
		flush := func() {
			if len(pts) > 0 {
				b.elem(`<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`, strings.Join(pts, " "), color)
				pts = pts[:0]
			}
		}
		for j := range s.X {
			if math.IsNaN(s.X[j]) || math.IsNaN(s.Y[j]) {
				flush()
				continue
			}
			if c.LogX && s.X[j] <= 0 {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(s.X[j]), sy(s.Y[j])))
		}
		flush()
	}

	// Axis labels.
	if c.XLabel != "" {
		b.elem(`<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11" fill="%s">%s</text>`, marginL+plotW/2, marginTop+plotH+34, textSecondary, esc(c.XLabel))
	}
	if c.YLabel != "" {
		b.elem(`<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle" font-family="sans-serif" font-size="11" fill="%s">%s</text>`, marginTop+plotH/2, marginTop+plotH/2, textSecondary, esc(c.YLabel))
	}
	// Legend row beneath the x-axis label.
	if len(c.Series) >= 2 {
		b.elem(`<g transform="translate(0 %d)">`, marginTop+plotH+54)
		names := make([]string, len(c.Series))
		for i, s := range c.Series {
			names[i] = s.Name
		}
		legend(&b, names, w)
		b.elem(`</g>`)
	}
	b.elem(`</svg>`)
	return b.String()
}

// SVG renders the grouped bar chart.
func (c BarChart) SVG() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = defaultW + 240 // wider: 12 benchmark categories
	}
	if h == 0 {
		h = defaultH
	}
	plotW := w - marginL - marginR
	plotH := h - marginTop - marginBot

	lo, hi := 0.0, math.Inf(-1)
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if math.IsNaN(v) {
				continue // failed cell — drawn as an annotated gap below
			}
			hi = math.Max(hi, v)
			lo = math.Min(lo, v)
		}
	}
	if math.IsInf(hi, -1) {
		hi = 1
	}
	yTicks := niceTicks(lo, hi, 5)
	hi = math.Max(hi, yTicks[len(yTicks)-1])
	lo = math.Min(lo, yTicks[0])

	sy := func(y float64) float64 {
		return float64(marginTop) + (1-(y-lo)/(hi-lo))*float64(plotH)
	}

	var b svgBuilder
	header(&b, w, h, c.Title)
	for _, t := range yTicks {
		y := sy(t)
		b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`, marginL, y, w-marginR, y, gridColor)
		b.elem(`<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="10" fill="%s">%s</text>`, marginL-6, y+3, textSecondary, formatTick(t))
	}
	b.elem(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"/>`, marginL, marginTop, marginL, marginTop+plotH, axisColor)

	ncat := len(c.Categories)
	ngrp := len(c.Groups)
	if ncat > 0 && ngrp > 0 {
		catW := float64(plotW) / float64(ncat)
		// 2px surface gaps between adjacent bars; bars fill ~70% of the slot.
		barW := math.Max(3, catW*0.7/float64(ngrp)-2)
		zeroY := sy(math.Max(0, lo))
		for ci, cat := range c.Categories {
			cx := float64(marginL) + (float64(ci)+0.5)*catW
			groupW := (barW + 2) * float64(ngrp)
			for gi, g := range c.Groups {
				if ci >= len(g.Values) {
					continue
				}
				v := g.Values[ci]
				x := cx - groupW/2 + float64(gi)*(barW+2) + 1
				if math.IsNaN(v) {
					// Failed cell: an ×-mark at the baseline instead of a
					// bar, so the gap is visibly deliberate.
					mx, my, mr := x+barW/2, zeroY-4, math.Min(3.5, barW/2)
					b.elem(`<path d="M %.1f %.1f L %.1f %.1f M %.1f %.1f L %.1f %.1f" stroke="%s" stroke-width="1.5" stroke-linecap="round"/>`,
						mx-mr, my-mr, mx+mr, my+mr, mx-mr, my+mr, mx+mr, my-mr, textSecondary)
					continue
				}
				yTop, yBot := sy(v), zeroY
				if v < 0 {
					yTop, yBot = zeroY, sy(v)
				}
				height := math.Max(yBot-yTop, 0.5)
				color := seriesColors[gi%len(seriesColors)]
				// Rounded data end (top), square baseline anchor.
				r := math.Min(3, barW/2)
				if v >= 0 {
					b.elem(`<path d="M %.1f %.1f L %.1f %.1f Q %.1f %.1f %.1f %.1f L %.1f %.1f Q %.1f %.1f %.1f %.1f L %.1f %.1f Z" fill="%s"/>`,
						x, yBot,
						x, yTop+r,
						x, yTop, x+r, yTop,
						x+barW-r, yTop,
						x+barW, yTop, x+barW, yTop+r,
						x+barW, yBot,
						color)
				} else {
					b.elem(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, x, yTop, barW, height, color)
				}
			}
			// Rotated category label.
			b.elem(`<text x="%.1f" y="%d" transform="rotate(-35 %.1f %d)" text-anchor="end" font-family="sans-serif" font-size="9" fill="%s">%s</text>`,
				cx, marginTop+plotH+12, cx, marginTop+plotH+12, textSecondary, esc(cat))
		}
		// Baseline drawn above the bars so negative bars hang below it.
		b.elem(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`, marginL, zeroY, w-marginR, zeroY, axisColor)
	}

	if c.YLabel != "" {
		b.elem(`<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle" font-family="sans-serif" font-size="11" fill="%s">%s</text>`, marginTop+plotH/2, marginTop+plotH/2, textSecondary, esc(c.YLabel))
	}
	if ngrp >= 2 {
		b.elem(`<g transform="translate(0 %d)">`, marginTop+plotH+58)
		names := make([]string, ngrp)
		for i, g := range c.Groups {
			names[i] = g.Name
		}
		legend(&b, names, w)
		b.elem(`</g>`)
	}
	b.elem(`</svg>`)
	return b.String()
}
