package plot

import (
	"math"
	"strings"
	"testing"
)

func TestNiceTicks(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 100, 5}, {0, 1, 5}, {0, 0.037, 4}, {-50, 130, 5}, {3, 3, 4}, {0, 1e7, 5},
	}
	for _, c := range cases {
		ticks := niceTicks(c.lo, c.hi, c.n)
		if len(ticks) < 2 {
			t.Errorf("niceTicks(%g, %g): only %d ticks", c.lo, c.hi, len(ticks))
			continue
		}
		// Ticks ascend with a constant step.
		step := ticks[1] - ticks[0]
		for i := 1; i < len(ticks); i++ {
			if d := ticks[i] - ticks[i-1]; math.Abs(d-step) > step*1e-9 {
				t.Errorf("niceTicks(%g, %g): uneven steps %g vs %g", c.lo, c.hi, d, step)
			}
		}
		// Coverage: first tick <= lo+step, last tick >= hi-step.
		if ticks[0] > c.lo+step/2 {
			t.Errorf("niceTicks(%g, %g): first tick %g misses lo", c.lo, c.hi, ticks[0])
		}
		if ticks[len(ticks)-1] < c.hi-step/2 {
			t.Errorf("niceTicks(%g, %g): last tick %g misses hi", c.lo, c.hi, ticks[len(ticks)-1])
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		5:       "5",
		2500000: "2.5M",
		12000:   "12k",
		0.25:    "0.25",
		-12000:  "-12k",
		1000000: "1M",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestLineChartSVG(t *testing.T) {
	c := LineChart{
		Title:  "depth over time",
		XLabel: "instructions",
		YLabel: "depth (words)",
		Series: []Series{
			{Name: "crafty", X: []float64{0, 1, 2, 3}, Y: []float64{0, 100, 400, 300}},
			{Name: "gcc", X: []float64{0, 1, 2, 3}, Y: []float64{0, 900, 3000, 1200}},
		},
	}
	svg := c.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "depth over time", "polyline",
		seriesColors[0], seriesColors[1], // fixed-order assignment
		"crafty", "gcc", // legend entries (2 series → legend required)
		"instructions", "depth (words)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Errorf("expected 2 polylines, got %d", n)
	}
}

func TestLineChartSingleSeriesNoLegend(t *testing.T) {
	c := LineChart{
		Title:  "one",
		Series: []Series{{Name: "solo", X: []float64{0, 1}, Y: []float64{1, 2}}},
	}
	svg := c.SVG()
	// A single series needs no legend box — the title names it.
	if strings.Contains(svg, ">solo<") {
		t.Error("single-series chart should not render a legend entry")
	}
}

func TestLineChartEmpty(t *testing.T) {
	svg := LineChart{Title: "empty"}.SVG()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty chart should still render a valid frame")
	}
}

func TestLineChartLogX(t *testing.T) {
	c := LineChart{
		Title: "cdf",
		LogX:  true,
		Series: []Series{
			{Name: "a", X: []float64{8, 64, 512, 8192}, Y: []float64{0.1, 0.5, 0.9, 1}},
			{Name: "b", X: []float64{0, 8, 64}, Y: []float64{0, 0.2, 0.9}}, // zero x dropped
		},
	}
	svg := c.SVG()
	if !strings.Contains(svg, "polyline") {
		t.Error("log chart lost its lines")
	}
}

func TestLineChartPointsWithinViewport(t *testing.T) {
	c := LineChart{
		Title:  "bounds",
		Width:  400,
		Height: 300,
		Series: []Series{{Name: "s", X: []float64{0, 10, 20}, Y: []float64{5, 50, 25}}},
	}
	svg := c.SVG()
	// Extract polyline points and verify they fall inside the viewport.
	i := strings.Index(svg, `points="`)
	if i < 0 {
		t.Fatal("no points attribute")
	}
	rest := svg[i+len(`points="`):]
	pts := rest[:strings.Index(rest, `"`)]
	for _, p := range strings.Fields(pts) {
		var x, y float64
		if _, err := fmtSscanf(p, &x, &y); err != nil {
			t.Fatalf("bad point %q", p)
		}
		if x < 0 || x > 400 || y < 0 || y > 300 {
			t.Errorf("point (%g, %g) outside 400x300 viewport", x, y)
		}
	}
}

func fmtSscanf(p string, x, y *float64) (int, error) {
	parts := strings.Split(p, ",")
	if len(parts) != 2 {
		return 0, strErr("want x,y")
	}
	if _, err := sscan(parts[0], x); err != nil {
		return 0, err
	}
	if _, err := sscan(parts[1], y); err != nil {
		return 1, err
	}
	return 2, nil
}

type strErr string

func (e strErr) Error() string { return string(e) }

func sscan(s string, f *float64) (int, error) {
	var v float64
	var neg bool
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	seen := false
	frac := 0.0
	scale := 0.1
	dot := false
	for ; i < len(s); i++ {
		ch := s[i]
		if ch == '.' {
			dot = true
			continue
		}
		if ch < '0' || ch > '9' {
			return 0, strErr("bad float " + s)
		}
		seen = true
		if dot {
			frac += float64(ch-'0') * scale
			scale /= 10
		} else {
			v = v*10 + float64(ch-'0')
		}
	}
	if !seen {
		return 0, strErr("empty float")
	}
	v += frac
	if neg {
		v = -v
	}
	*f = v
	return 1, nil
}

func TestBarChartSVG(t *testing.T) {
	c := BarChart{
		Title:      "speedups",
		YLabel:     "% improvement",
		Categories: []string{"bzip2", "crafty", "eon"},
		Groups: []BarGroup{
			{Name: "svf(2+2)", Values: []float64{21, 34, 19}},
			{Name: "stack$(2+2)", Values: []float64{19, 39, 34}},
		},
	}
	svg := c.SVG()
	for _, want := range []string{"speedups", "% improvement", "bzip2", "crafty", "eon", "svf(2+2)", "stack$(2+2)"} {
		if !strings.Contains(svg, esc(want)) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 3 categories × 2 groups = 6 positive bars (rounded-top paths).
	if n := strings.Count(svg, "<path"); n != 6 {
		t.Errorf("expected 6 bar paths, got %d", n)
	}
}

func TestBarChartNegativeValues(t *testing.T) {
	c := BarChart{
		Title:      "mixed",
		Categories: []string{"a", "b"},
		Groups:     []BarGroup{{Name: "g", Values: []float64{10, -5}}},
	}
	svg := c.SVG()
	// Negative bars render as plain rects hanging below the baseline.
	if !strings.Contains(svg, "<rect x=") {
		t.Error("negative bar missing")
	}
	if !strings.Contains(svg, "<path") {
		t.Error("positive bar missing")
	}
}

// xMarks counts the ×-mark paths a bar chart drew for NaN (failed) cells;
// they are the only elements with the 1.5px round-capped stroke.
func xMarks(svg string) int {
	return strings.Count(svg, `stroke-width="1.5" stroke-linecap="round"`)
}

func TestBarChartNaNCellRendersXMark(t *testing.T) {
	nan := math.NaN()
	c := BarChart{
		Title:      "degraded",
		Categories: []string{"a", "b", "c"},
		Groups: []BarGroup{
			{Name: "g1", Values: []float64{10, nan, 30}},
			{Name: "g2", Values: []float64{15, 25, nan}},
		},
	}
	svg := c.SVG()
	if got := xMarks(svg); got != 2 {
		t.Errorf("got %d ×-marks, want 2 (one per failed cell)", got)
	}
	// The four valid cells still render as rounded-top bar paths.
	if got := strings.Count(svg, "<path") - xMarks(svg); got != 4 {
		t.Errorf("got %d bar paths, want 4", got)
	}
}

func TestBarChartAllNaNColumn(t *testing.T) {
	// A category where every group failed: no bars in the slot, one ×-mark
	// per group, and the axis still scales from the surviving columns.
	nan := math.NaN()
	c := BarChart{
		Title:      "one column gone",
		Categories: []string{"alive", "dead"},
		Groups: []BarGroup{
			{Name: "g1", Values: []float64{40, nan}},
			{Name: "g2", Values: []float64{20, nan}},
		},
	}
	svg := c.SVG()
	if got := xMarks(svg); got != 2 {
		t.Errorf("got %d ×-marks, want 2", got)
	}
	if !strings.Contains(svg, ">40<") {
		t.Errorf("axis lost the surviving columns' scale:\n%s", svg)
	}
	if !strings.Contains(svg, "</svg>") {
		t.Error("chart did not render to completion")
	}
}

func TestBarChartSingleValidCell(t *testing.T) {
	// Only one cell in the whole chart survived: it must still produce a
	// bar and a sane axis rather than a degenerate 0-range scale.
	nan := math.NaN()
	c := BarChart{
		Title:      "one survivor",
		Categories: []string{"a", "b", "c"},
		Groups:     []BarGroup{{Name: "g", Values: []float64{nan, 7, nan}}},
	}
	svg := c.SVG()
	if got := xMarks(svg); got != 2 {
		t.Errorf("got %d ×-marks, want 2", got)
	}
	if got := strings.Count(svg, "<path") - xMarks(svg); got != 1 {
		t.Errorf("got %d bar paths, want 1", got)
	}
}

func TestLineChartNaNSplitsPolyline(t *testing.T) {
	// A NaN point breaks the polyline into separate segments: a failed cell
	// reads as a gap, never as an interpolated value.
	c := LineChart{
		Title: "gap",
		Series: []Series{{
			Name: "s",
			X:    []float64{1, 2, 3, 4, 5},
			Y:    []float64{1, 2, math.NaN(), 4, 5},
		}},
	}
	svg := c.SVG()
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("got %d polyline segments, want 2", got)
	}
}

func TestBarChartEmpty(t *testing.T) {
	svg := BarChart{Title: "none"}.SVG()
	if !strings.Contains(svg, "</svg>") {
		t.Error("empty bar chart should render a frame")
	}
}

func TestEscaping(t *testing.T) {
	c := LineChart{Title: `a<b>&"c"`}
	svg := c.SVG()
	if strings.Contains(svg, `a<b>`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Error("escaped title missing")
	}
}

func TestFixedColorOrder(t *testing.T) {
	// Color follows the series position, never the data: the first series
	// is always slot 1 (blue), the second slot 2 (aqua).
	c := BarChart{
		Title:      "order",
		Categories: []string{"x"},
		Groups:     []BarGroup{{Name: "first", Values: []float64{1}}, {Name: "second", Values: []float64{2}}},
	}
	svg := c.SVG()
	i1 := strings.Index(svg, seriesColors[0])
	i2 := strings.Index(svg, seriesColors[1])
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Error("categorical slots not assigned in fixed order")
	}
}
