// Portsweep explores the paper's central design-space question (Figures 7
// and 9): given a fixed transistor budget, is it better to add ports to
// the first-level data cache or to bolt on a small Stack Value File?
//
// The sweep runs one benchmark across data-cache port counts with and
// without an SVF and prints a configuration/IPC matrix.
package main

import (
	"flag"
	"fmt"
	"log"

	"svf"
)

func main() {
	bench := flag.String("bench", "253.perlbmk", "benchmark to sweep")
	insts := flag.Int("insts", 400_000, "instructions per run")
	flag.Parse()

	prof := svf.ByName(*bench)
	if prof == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	type cfg struct {
		name       string
		dl1Ports   int
		policy     svf.StackPolicy
		stackPorts int
		dl1Lat     int
	}
	configs := []cfg{
		{"(1+0) baseline", 1, svf.PolicyNone, 0, 0},
		{"(2+0) baseline", 2, svf.PolicyNone, 0, 0},
		{"(4+0) baseline, 4-cycle DL1", 4, svf.PolicyNone, 0, 4},
		{"(1+1) SVF", 1, svf.PolicySVF, 1, 0},
		{"(1+2) SVF", 1, svf.PolicySVF, 2, 0},
		{"(2+1) SVF", 2, svf.PolicySVF, 1, 0},
		{"(2+2) SVF", 2, svf.PolicySVF, 2, 0},
		{"(2+2) stack cache", 2, svf.PolicyStackCache, 2, 0},
	}

	fmt.Printf("port sweep on %s (%d instructions, 16-wide, 8KB stack structures)\n\n", prof.ID(), *insts)
	fmt.Printf("%-30s %10s %8s %12s\n", "configuration", "cycles", "IPC", "vs (2+0)")
	var ref uint64
	for _, c := range configs {
		r, err := svf.Run(prof, svf.Options{
			DL1Ports:      c.dl1Ports,
			DL1HitLatency: c.dl1Lat,
			Policy:        c.policy,
			StackPorts:    c.stackPorts,
			MaxInsts:      *insts,
		})
		if err != nil {
			log.Fatal(err)
		}
		if c.name == "(2+0) baseline" {
			ref = r.Cycles()
		}
		rel := "-"
		if ref != 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*(float64(ref)/float64(r.Cycles())-1))
		}
		fmt.Printf("%-30s %10d %8.2f %12s\n", c.name, r.Cycles(), r.IPC(), rel)
	}
	fmt.Println("\nThe paper's conclusion, visible here: a small dual-ported SVF beside a")
	fmt.Println("dual-ported cache rivals (or beats) doubling the cache's ports outright.")
}
