// Traffic reproduces the paper's memory-traffic study (Table 3) for a
// chosen set of benchmarks and structure sizes, demonstrating the SVF's
// semantic-liveness advantage: allocation kills avoid write-miss fills,
// deallocation kills avoid dead-data writebacks.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"svf"
)

func main() {
	insts := flag.Int("insts", 2_000_000, "instructions per measurement")
	benches := flag.String("bench", "176.gcc,252.eon,164.gzip,197.parser", "comma-separated benchmarks")
	flag.Parse()

	fmt.Printf("stack structure traffic in 64-bit quadwords (%d instructions)\n\n", *insts)
	fmt.Printf("%-22s %6s %12s %12s %12s %12s %9s\n",
		"benchmark", "size", "stack$ in", "SVF in", "stack$ out", "SVF out", "out ratio")

	for _, name := range strings.Split(*benches, ",") {
		prof := svf.ByName(strings.TrimSpace(name))
		if prof == nil {
			log.Fatalf("unknown benchmark %q", name)
		}
		for _, size := range []int{2 << 10, 4 << 10, 8 << 10} {
			scIn, scOut, _, err := svf.StackTraffic(prof, svf.PolicyStackCache, size, *insts, 0)
			if err != nil {
				log.Fatal(err)
			}
			svfIn, svfOut, _, err := svf.StackTraffic(prof, svf.PolicySVF, size, *insts, 0)
			if err != nil {
				log.Fatal(err)
			}
			ratio := "-"
			if svfOut > 0 {
				ratio = fmt.Sprintf("%.0fx", float64(scOut)/float64(svfOut))
			} else if scOut > 0 {
				ratio = "inf"
			}
			fmt.Printf("%-22s %5dK %12d %12d %12d %12d %9s\n",
				prof.ID(), size>>10, scIn, svfIn, scOut, svfOut, ratio)
		}
		fmt.Println()
	}

	fmt.Println("Why the SVF moves so much less data (§5.3.2):")
	fmt.Println("  1. Allocations: new stack words are dead — a stack cache must fetch")
	fmt.Println("     the rest of the line before a write miss completes; the SVF just")
	fmt.Println("     invalidates the entry and takes the store.")
	fmt.Println("  2. Dirty replacements: words above the TOS after a return are dead —")
	fmt.Println("     a stack cache writes the dirty line back anyway; the SVF kills it.")
	fmt.Println("  3. Granularity: the SVF moves 8-byte words on demand; the stack cache")
	fmt.Println("     moves whole 32-byte lines.")
}
