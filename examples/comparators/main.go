// Comparators pits the three stack-optimising structures against each
// other on one workload: the paper's Stack Value File, the decoupled stack
// cache it evaluates against (§5.3), and the register-stack-engine
// alternative its related work describes (§6). One table shows why the
// non-architected, per-word-status SVF wins on every axis the paper
// measures.
package main

import (
	"flag"
	"fmt"
	"log"

	"svf"
)

func main() {
	bench := flag.String("bench", "176.gcc", "benchmark to compare on")
	insts := flag.Int("insts", 400_000, "instructions per timing run")
	size := flag.Int("size", 8192, "structure capacity in bytes")
	flag.Parse()

	prof := svf.ByName(*bench)
	if prof == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}

	base, err := svf.Run(prof, svf.Options{MaxInsts: *insts})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, %d-byte structures, %d instructions\n\n", prof.ID(), *size, *insts)
	fmt.Printf("%-22s %10s %12s %12s %14s\n", "structure", "speedup", "QW in", "QW out", "B/ctx-switch")

	const ctxPeriod = 100_000
	for _, c := range []struct {
		name   string
		policy svf.StackPolicy
	}{
		{"stack value file", svf.PolicySVF},
		{"stack cache", svf.PolicyStackCache},
		{"register stack", svf.PolicyRSE},
	} {
		r, err := svf.Run(prof, svf.Options{Policy: c.policy, StackSizeBytes: *size, StackPorts: 2, MaxInsts: *insts})
		if err != nil {
			log.Fatal(err)
		}
		in, out, ctxBytes, err := svf.StackTraffic(prof, c.policy, *size, 4**insts, ctxPeriod)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9.1f%% %12d %12d %14d\n",
			c.name, 100*(float64(base.Cycles())/float64(r.Cycles())-1), in, out, ctxBytes)
	}

	fmt.Println(`
Why the SVF wins (the paper's §5.3 + §6 arguments, measured):
  vs the stack cache:  no write-allocate line fills on frame allocation, no
                       dead-line writebacks on return, per-word traffic.
  vs register windows: demand-driven per-word fills instead of whole-frame
                       underflows, dirty-only spills instead of whole-frame
                       overflows, and only dirty words — not architectural
                       state — move on a context switch.`)
}
