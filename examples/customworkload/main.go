// Customworkload shows how to define a synthetic program profile of your
// own — here, a deeply recursive "interpreter" with a stack working set
// that defeats an 8KB structure — characterise it (the paper's Figures
// 1-3 methodology), and measure how much an SVF helps it.
package main

import (
	"fmt"
	"log"

	"svf"
)

func main() {
	// Start from a bundled profile and reshape it. Every knob is
	// documented on svf.Profile.
	p := *svf.ByName("197.parser")
	p.Name = "999.interp"
	p.Input = "demo"
	p.Seed = 4242

	p.MemFrac = 0.45   // 45% of instructions touch memory
	p.StackFrac = 0.70 // 70% of those touch the stack
	p.SPFrac = 0.75    // mostly $sp-relative...
	p.FPFrac = 0.05    // ...some through the frame pointer

	p.FrameWordsMin, p.FrameWordsMax = 16, 48
	p.DepthTypicalWords = 1400 // ~11KB working set: spills an 8KB window
	p.DepthBurstWords = 2600
	p.BurstProb = 0.2
	p.RecurseFrac = 0.5 // heavily recursive

	if err := p.Validate(); err != nil {
		log.Fatal(err)
	}

	// Characterise it the way the paper characterises SPECint2000.
	c, err := svf.Characterize(&p, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s\n", p.ID())
	fmt.Printf("  memory refs / instruction   %.2f\n", c.MemFrac())
	fmt.Printf("  stack share of memory refs  %.2f\n", c.StackFrac())
	fmt.Printf("  max stack depth             %d words (%.1f KB)\n", c.MaxDepthWords, float64(c.MaxDepthWords)/128)
	fmt.Printf("  mean offset from TOS        %.0f bytes\n", c.MeanOffsetBytes())
	fmt.Printf("  refs within 8KB of TOS      %.1f%%\n", 100*c.Within8KB())
	fmt.Println()

	// How does SVF capacity matter for it? (The DESIGN.md capacity
	// ablation, on a custom workload.)
	const insts = 300_000
	base, err := svf.Run(&p, svf.Options{MaxInsts: insts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (IPC %.2f)\n", base.Cycles(), base.IPC())
	for _, kb := range []int{2, 4, 8, 16, 32} {
		r, err := svf.Run(&p, svf.Options{
			Policy:         svf.PolicySVF,
			StackSizeBytes: kb << 10,
			StackPorts:     2,
			MaxInsts:       insts,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2dKB SVF: %d cycles (%+.1f%%), %d QW spilled, %d QW filled\n",
			kb, r.Cycles(), 100*(float64(base.Cycles())/float64(r.Cycles())-1),
			r.SVFQWOut, r.SVFQWIn)
	}
	fmt.Println("\nAn adequately sized SVF captures the whole working set; an undersized")
	fmt.Println("one slides its window across the deep recursion and pays spill traffic.")
}
