// Quickstart: simulate one benchmark on the paper's 16-wide machine with
// and without a Stack Value File and report the speedup — the smallest
// possible end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"svf"
)

func main() {
	bench := svf.ByName("186.crafty")
	const insts = 500_000

	base, err := svf.Run(bench, svf.Options{MaxInsts: insts})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := svf.Run(bench, svf.Options{
		Policy:     svf.PolicySVF,
		StackPorts: 2,
		MaxInsts:   insts,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark            %s (%d instructions)\n", base.Bench, insts)
	fmt.Printf("baseline             %d cycles (IPC %.2f)\n", base.Cycles(), base.IPC())
	fmt.Printf("with 8KB 2-port SVF  %d cycles (IPC %.2f)\n", fast.Cycles(), fast.IPC())
	fmt.Printf("speedup              %.2fx\n", float64(base.Cycles())/float64(fast.Cycles()))
	fmt.Println()
	fmt.Printf("morphed into register moves: %d of %d stack references (%.0f%%)\n",
		fast.SVF.MorphedRefs(),
		fast.SVF.MorphedRefs()+fast.SVF.ReroutedRefs(),
		100*float64(fast.SVF.MorphedRefs())/float64(fast.SVF.MorphedRefs()+fast.SVF.ReroutedRefs()))
	fmt.Printf("stack traffic to L1:         %d quadwords in, %d out\n", fast.SVFQWIn, fast.SVFQWOut)
	fmt.Printf("writebacks avoided:          %d dead words killed on deallocation\n", fast.SVF.DeallocKills)
}
