// X86flavor runs the paper's §7 future-work question: what happens to the
// SVF on an x86-style workload — heavier stack use, but partial-word
// references whose first writes can no longer exploit the allocation kill
// (a sub-word store to an invalid entry must read-modify-write the word)?
package main

import (
	"flag"
	"fmt"
	"log"

	"svf"
)

func main() {
	bench := flag.String("bench", "186.crafty", "base benchmark to compare Alpha vs x86 flavours of")
	insts := flag.Int("insts", 400_000, "instructions per run")
	flag.Parse()

	alpha := svf.ByName(*bench)
	if alpha == nil {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	x86 := svf.X86Variant(alpha)

	fmt.Printf("%-34s %14s %14s\n", "", "Alpha flavour", "x86 flavour")
	for _, row := range []struct {
		name string
		prof *svf.Profile
	}{{"alpha", alpha}, {"x86", x86}} {
		base, err := svf.Run(row.prof, svf.Options{MaxInsts: *insts})
		if err != nil {
			log.Fatal(err)
		}
		withSVF, err := svf.Run(row.prof, svf.Options{Policy: svf.PolicySVF, StackPorts: 2, MaxInsts: *insts})
		if err != nil {
			log.Fatal(err)
		}
		if row.name == "alpha" {
			fmt.Printf("%-34s %13.1f%%", "SVF speedup over baseline", 100*(float64(base.Cycles())/float64(withSVF.Cycles())-1))
		} else {
			fmt.Printf(" %13.1f%%\n", 100*(float64(base.Cycles())/float64(withSVF.Cycles())-1))
			a, _ := svf.Run(alpha, svf.Options{Policy: svf.PolicySVF, StackPorts: 2, MaxInsts: *insts})
			fmt.Printf("%-34s %14d %14d\n", "sub-word read-modify-writes", a.SVF.SubWordRMWs, withSVF.SVF.SubWordRMWs)
			fmt.Printf("%-34s %14d %14d\n", "SVF fill traffic (quadwords)", a.SVFQWIn, withSVF.SVFQWIn)
		}
	}

	fmt.Println()
	fmt.Println("The §7 anticipation, quantified: partial-word first writes force")
	fmt.Println("read-modify-write fetches the Alpha's 64-bit granularity never pays,")
	fmt.Println("eroding — but not erasing — the SVF's advantage on x86-style code.")
}
