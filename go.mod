module svf

go 1.22
