// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`). Each benchmark executes its
// experiment end-to-end and reports the paper's headline number as a
// custom metric, so the -bench output doubles as a compact reproduction
// report:
//
//	BenchmarkFig5   ... speedup16_pct   (paper: 31)
//	BenchmarkFig9   ... speedup22_pct   (paper: 24)
//	BenchmarkTable4 ... traffic_ratio   (paper: 3-20x)
//
// The Ablation benchmarks quantify the design choices DESIGN.md calls out:
// per-word status granularity, the liveness kills, decode-stage morphing,
// and SVF capacity.
package svf

import (
	"testing"

	"svf/internal/synth"
)

// benchInsts keeps the full suite under a few minutes; raise for tighter
// estimates (the CLI uses larger budgets by default).
const (
	benchInsts   = 150_000
	benchTraffic = 600_000
)

func benchCfg() ExperimentConfig {
	// Each call gets a fresh, private run cache: the benchmarks measure
	// end-to-end regeneration cost, so iterations must not serve each
	// other's simulations from the process-wide shared cache.
	return ExperimentConfig{MaxInsts: benchInsts, TrafficInsts: benchTraffic, Cache: NewRunCache()}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var stack, mem float64
		for _, row := range r.Rows {
			stack += row.StackTotal()
			mem += row.MemFrac
		}
		b.ReportMetric(100*stack/float64(len(r.Rows)), "stack_pct")  // paper: ~56
		b.ReportMetric(100*mem/float64(len(r.Rows)), "mem_inst_pct") // paper: ~42
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var fits int
		for _, s := range r.Series {
			if s.MaxDepthWords <= 1000 {
				fits++
			}
		}
		// Paper: a 1000-unit structure exceeds the max stack size for
		// most applications.
		b.ReportMetric(float64(fits), "benchmarks_fitting_1000_units")
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var w float64
		for _, row := range r.Rows {
			w += row.Within8KB
		}
		b.ReportMetric(100*w/float64(len(r.Rows)), "within_8KB_pct") // paper: >99
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.Mean4-1), "speedup4_pct")      // paper: 11
		b.ReportMetric(100*(r.Mean8-1), "speedup8_pct")      // paper: 19
		b.ReportMetric(100*(r.Mean16-1), "speedup16_pct")    // paper: 31
		b.ReportMetric(100*(r.MeanGshare-1), "gshare16_pct") // paper: 25
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.MeanL1x2-1), "l1x2_pct")     // paper: ~0
		b.ReportMetric(100*(r.MeanNoAddr-1), "noaddr_pct") // paper: ~3
		b.ReportMetric(100*(r.Mean2-1), "svf2p_pct")
		b.ReportMetric(100*(r.Mean16P-1), "svf16p_pct") // paper: ~28 incremental
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.MeanBase4-1), "base4_pct")
		b.ReportMetric(100*(r.MeanSC22-1), "sc22_pct")
		b.ReportMetric(100*(r.MeanSVF22-1), "svf22_pct")
		b.ReportMetric(100*(r.MeanNoSquash-1), "nosquash_pct")
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MeanMorphed, "morphed_pct") // paper: ~86
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.Mean11-1), "speedup11_pct") // paper: ~50
		b.ReportMetric(100*(r.Mean12-1), "speedup12_pct") // paper: ~65
		b.ReportMetric(100*(r.Mean22-1), "speedup22_pct") // paper: ~24
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var scOut, svfOut uint64
		for _, row := range r.Rows {
			scOut += row.SCOut[2]
			svfOut += row.SVFOut[2]
		}
		// Paper: the SVF reduces traffic by orders of magnitude.
		if svfOut == 0 {
			svfOut = 1
		}
		b.ReportMetric(float64(scOut)/float64(svfOut), "sc_over_svf_out_8KB")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.TrafficInsts = 2_000_000 // several 400k context-switch periods
		r, err := Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, row := range r.Rows {
			ratio += row.Ratio()
		}
		b.ReportMetric(ratio/float64(len(r.Rows)), "traffic_ratio") // paper: 3-20x
	}
}

// --- Ablations (DESIGN.md §5) ---

func ablationBenchmarks() []*Profile {
	return []*Profile{synth.Crafty(), synth.Gcc(), synth.Eon()}
}

// BenchmarkAblationGranularity compares the SVF's per-word (64-bit)
// valid/dirty bits against 4-word (cache-line-like) status granularity;
// §3.3 predicts more traffic at coarser grain.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var fine, coarse uint64
		for _, prof := range ablationBenchmarks() {
			for _, gran := range []int{1, 4} {
				in, out, _, err := StackTrafficSVF(prof, SVFConfig{
					SizeBytes: 8 << 10, StatusGranularityWords: gran,
				}, benchTraffic, 0)
				if err != nil {
					b.Fatal(err)
				}
				if gran == 1 {
					fine += in + out
				} else {
					coarse += in + out
				}
			}
		}
		if fine == 0 {
			fine = 1
		}
		b.ReportMetric(float64(coarse)/float64(fine), "coarse_over_fine_traffic")
	}
}

// BenchmarkAblationKill turns off the allocation/deallocation liveness
// kills: traffic must degrade sharply toward stack-cache behaviour.
func BenchmarkAblationKill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var with, without uint64
		for _, prof := range ablationBenchmarks() {
			in1, out1, _, err := StackTrafficSVF(prof, SVFConfig{SizeBytes: 8 << 10}, benchTraffic, 0)
			if err != nil {
				b.Fatal(err)
			}
			in2, out2, _, err := StackTrafficSVF(prof, SVFConfig{
				SizeBytes: 8 << 10, DisableKills: true,
			}, benchTraffic, 0)
			if err != nil {
				b.Fatal(err)
			}
			with += in1 + out1
			without += in2 + out2
		}
		if with == 0 {
			with = 1
		}
		b.ReportMetric(float64(without)/float64(with), "nokill_over_kill_traffic")
	}
}

// BenchmarkAblationMorph disables decode-stage morphing (everything
// reroutes post-AGEN), isolating how much of the speedup comes from early
// address resolution and renaming.
func BenchmarkAblationMorph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var morphCycles, rerouteCycles, baseCycles uint64
		for _, prof := range ablationBenchmarks() {
			base, err := Run(prof, Options{MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			morph, err := Run(prof, Options{Policy: PolicySVF, StackPorts: 2, MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			mc := SixteenWide()
			mc.NoMorph = true
			reroute, err := Run(prof, Options{Machine: mc, Policy: PolicySVF, StackPorts: 2, MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			baseCycles += base.Cycles()
			morphCycles += morph.Cycles()
			rerouteCycles += reroute.Cycles()
		}
		b.ReportMetric(100*(float64(baseCycles)/float64(morphCycles)-1), "morph_speedup_pct")
		b.ReportMetric(100*(float64(baseCycles)/float64(rerouteCycles)-1), "reroute_only_speedup_pct")
	}
}

// BenchmarkAblationCapacity sweeps the SVF from 1KB to 16KB.
func BenchmarkAblationCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kb := range []int{1, 2, 4, 8, 16} {
			var cycles uint64
			for _, prof := range ablationBenchmarks() {
				r, err := Run(prof, Options{
					Policy: PolicySVF, StackSizeBytes: kb << 10, StackPorts: 2, MaxInsts: benchInsts,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles += r.Cycles()
			}
			b.ReportMetric(float64(cycles), "cycles_"+sizeLabel(kb))
		}
	}
}

func sizeLabel(kb int) string {
	switch kb {
	case 1:
		return "1KB"
	case 2:
		return "2KB"
	case 4:
		return "4KB"
	case 8:
		return "8KB"
	default:
		return "16KB"
	}
}

// BenchmarkX86PartialWords quantifies the paper's §7 anticipation: on
// x86-flavoured workloads (partial-word references, heavier stack use) the
// SVF pays read-modify-write fetches on partial first-writes, eroding —
// but not erasing — the allocation-kill advantage.
func BenchmarkX86PartialWords(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var alphaIn, x86In, rmws uint64
		var alphaSpd, x86Spd []float64
		for _, base := range []*Profile{synth.Crafty(), synth.Parser()} {
			x86 := X86Variant(base)
			aIn, _, _, err := StackTrafficSVF(base, SVFConfig{SizeBytes: 8 << 10}, benchTraffic, 0)
			if err != nil {
				b.Fatal(err)
			}
			xIn, _, _, err := StackTrafficSVF(x86, SVFConfig{SizeBytes: 8 << 10}, benchTraffic, 0)
			if err != nil {
				b.Fatal(err)
			}
			alphaIn += aIn
			x86In += xIn
			for _, prof := range []*Profile{base, x86} {
				bl, err := Run(prof, Options{MaxInsts: benchInsts})
				if err != nil {
					b.Fatal(err)
				}
				sv, err := Run(prof, Options{Policy: PolicySVF, StackPorts: 2, MaxInsts: benchInsts})
				if err != nil {
					b.Fatal(err)
				}
				spd := float64(bl.Cycles()) / float64(sv.Cycles())
				if prof == base {
					alphaSpd = append(alphaSpd, spd)
				} else {
					x86Spd = append(x86Spd, spd)
					rmws += sv.SVF.SubWordRMWs
				}
			}
		}
		if alphaIn == 0 {
			alphaIn = 1
		}
		b.ReportMetric(float64(x86In)/float64(alphaIn), "x86_over_alpha_fill_traffic")
		b.ReportMetric(float64(rmws), "subword_rmws")
		b.ReportMetric(100*(mean(alphaSpd)-1), "alpha_svf_speedup_pct")
		b.ReportMetric(100*(mean(x86Spd)-1), "x86_svf_speedup_pct")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkAdaptiveDisable exercises the §3.3 dynamic-disable monitor on a
// workload whose stack working set thrashes a small SVF.
func BenchmarkAdaptiveDisable(b *testing.B) {
	thrash := *synth.Perlbmk()
	thrash.Name = "998.thrash"
	thrash.Seed = 777
	thrash.DepthTypicalWords = 3000 // far beyond a 2KB window
	thrash.DepthBurstWords = 4000
	for i := 0; i < b.N; i++ {
		plainIn, plainOut, _, err := StackTrafficSVF(&thrash, SVFConfig{SizeBytes: 2 << 10}, benchTraffic, 0)
		if err != nil {
			b.Fatal(err)
		}
		adaptIn, adaptOut, _, err := StackTrafficSVF(&thrash, SVFConfig{SizeBytes: 2 << 10, AdaptiveDisable: true}, benchTraffic, 0)
		if err != nil {
			b.Fatal(err)
		}
		plain := plainIn + plainOut
		if plain == 0 {
			plain = 1
		}
		b.ReportMetric(float64(adaptIn+adaptOut)/float64(plain), "adaptive_traffic_ratio")
	}
}

// BenchmarkRSEComparison contrasts the SVF with the §6 architectural
// alternative (register windows / register stack engine) at equal capacity:
// the RSE's whole-frame overflow/underflow and its architectural
// context-switch spills move far more data.
func BenchmarkRSEComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var svfQW, rseQW, svfCtx, rseCtx uint64
		for _, prof := range ablationBenchmarks() {
			sIn, sOut, sCtx, err := StackTraffic(prof, PolicySVF, 8<<10, benchTraffic, 400_000)
			if err != nil {
				b.Fatal(err)
			}
			rIn, rOut, rCtx, err := StackTraffic(prof, PolicyRSE, 8<<10, benchTraffic, 400_000)
			if err != nil {
				b.Fatal(err)
			}
			svfQW += sIn + sOut
			rseQW += rIn + rOut
			svfCtx += sCtx
			rseCtx += rCtx
		}
		if svfQW == 0 {
			svfQW = 1
		}
		if svfCtx == 0 {
			svfCtx = 1
		}
		b.ReportMetric(float64(rseQW)/float64(svfQW), "rse_over_svf_traffic")
		b.ReportMetric(float64(rseCtx)/float64(svfCtx), "rse_over_svf_ctx_bytes")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions simulated per wall-clock second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof := synth.Crafty()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(prof, Options{Policy: PolicySVF, StackPorts: 2, MaxInsts: 200_000})
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Pipe.Committed
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "sim_insts/s")
}

// BenchmarkTraceGeneration measures workload-generation speed.
func BenchmarkTraceGeneration(b *testing.B) {
	prog, err := BuildProgram(synth.Gcc())
	if err != nil {
		b.Fatal(err)
	}
	gen := synth.NewGeneratorFor(prog)
	b.ResetTimer()
	var in Inst
	for i := 0; i < b.N; i++ {
		gen.Next(&in)
	}
}

// BenchmarkAblationBanking compares a flat dual-ported SVF against a
// 4-banked design (§7: "can easily be banked") — banking approximates
// multi-porting at far lower cost, conflicting only on same-bank accesses.
func BenchmarkAblationBanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var flat2, banked4, flat1 uint64
		for _, prof := range ablationBenchmarks() {
			r2, err := Run(prof, Options{Policy: PolicySVF, StackPorts: 2, MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			r4, err := Run(prof, Options{Policy: PolicySVF, SVFBanks: 4, MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			r1, err := Run(prof, Options{Policy: PolicySVF, StackPorts: 1, MaxInsts: benchInsts})
			if err != nil {
				b.Fatal(err)
			}
			flat2 += r2.Cycles()
			banked4 += r4.Cycles()
			flat1 += r1.Cycles()
		}
		b.ReportMetric(float64(flat1)/float64(banked4), "banked4_vs_1port_speedup")
		b.ReportMetric(float64(flat2)/float64(banked4), "banked4_vs_2port_speedup")
	}
}
