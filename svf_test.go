package svf_test

import (
	"bytes"
	"fmt"
	"testing"

	"svf"
)

func TestPublicAPIBenchmarks(t *testing.T) {
	if len(svf.Benchmarks()) != 12 {
		t.Fatal("Benchmarks() should expose the twelve Table 1 profiles")
	}
	if len(svf.BenchmarkInputs()) != 17 {
		t.Fatal("BenchmarkInputs() should expose the seventeen Table 3 rows")
	}
	if svf.ByName("256.bzip2") == nil {
		t.Fatal("ByName failed for a bundled benchmark")
	}
}

func TestPublicAPIRun(t *testing.T) {
	prof := svf.ByName("175.vpr")
	base, err := svf.Run(prof, svf.Options{MaxInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := svf.Run(prof, svf.Options{Policy: svf.PolicySVF, StackPorts: 2, MaxInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles() >= base.Cycles() {
		t.Errorf("SVF (%d cycles) should beat the baseline (%d)", fast.Cycles(), base.Cycles())
	}
	if fast.SVF == nil || fast.SVF.MorphedRefs() == 0 {
		t.Error("SVF run should morph references")
	}
}

func TestPublicAPICharacterize(t *testing.T) {
	c, err := svf.Characterize(svf.ByName("164.gzip"), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.MemFrac() <= 0 || c.StackFrac() <= 0 {
		t.Error("characterisation returned no data")
	}
}

func TestPublicAPITraffic(t *testing.T) {
	scIn, _, _, err := svf.StackTraffic(svf.ByName("176.gcc"), svf.PolicyStackCache, 2<<10, 200_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	svfIn, _, _, err := svf.StackTrafficSVF(svf.ByName("176.gcc"), svf.SVFConfig{SizeBytes: 2 << 10}, 200_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if svfIn >= scIn {
		t.Errorf("SVF fills (%d) should be below stack-cache fills (%d)", svfIn, scIn)
	}
}

func TestPublicAPIMachinePresets(t *testing.T) {
	if svf.FourWide().Width != 4 || svf.EightWide().Width != 8 || svf.SixteenWide().Width != 16 {
		t.Error("machine presets wrong")
	}
}

func TestAblationKnobsExposed(t *testing.T) {
	// Coarser status granularity must cost traffic (§3.3).
	prof := svf.ByName("186.crafty")
	fineIn, fineOut, _, err := svf.StackTrafficSVF(prof, svf.SVFConfig{SizeBytes: 2 << 10}, 400_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	coarseIn, coarseOut, _, err := svf.StackTrafficSVF(prof, svf.SVFConfig{SizeBytes: 2 << 10, StatusGranularityWords: 4}, 400_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if coarseIn+coarseOut <= fineIn+fineOut {
		t.Errorf("4-word granularity (%d QW) should cost more traffic than per-word (%d QW)",
			coarseIn+coarseOut, fineIn+fineOut)
	}
	// Disabling the liveness kills must cost much more traffic (§5.3.2).
	nokillIn, nokillOut, _, err := svf.StackTrafficSVF(prof, svf.SVFConfig{SizeBytes: 2 << 10, DisableKills: true}, 400_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nokillIn+nokillOut < 5*(fineIn+fineOut) {
		t.Errorf("disabling kills gives %d QW vs %d; expected a large degradation",
			nokillIn+nokillOut, fineIn+fineOut)
	}
}

// Example demonstrates the smallest end-to-end use of the library.
func Example() {
	prof := svf.ByName("164.gzip")
	base, _ := svf.Run(prof, svf.Options{MaxInsts: 50_000})
	fast, _ := svf.Run(prof, svf.Options{Policy: svf.PolicySVF, StackPorts: 2, MaxInsts: 50_000})
	fmt.Println(fast.Cycles() < base.Cycles())
	// Output: true
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	prof := svf.ByName("164.gzip")
	gen, err := svf.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	var insts []svf.Inst
	var in svf.Inst
	for i := 0; i < 20_000; i++ {
		gen.Next(&in)
		insts = append(insts, in)
	}
	var buf bytes.Buffer
	if err := svf.WriteTrace(&buf, insts); err != nil {
		t.Fatal(err)
	}
	reloaded, err := svf.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := svf.Options{Policy: svf.PolicySVF, StackPorts: 2, MaxInsts: len(insts)}
	live, err := svf.Run(prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := svf.RunTrace("gzip-replay", reloaded, opt)
	if err != nil {
		t.Fatal(err)
	}
	if live.Cycles() != replayed.Cycles() {
		t.Errorf("replay (%d cycles) diverged from live run (%d)", replayed.Cycles(), live.Cycles())
	}
	if replayed.Bench != "gzip-replay" {
		t.Errorf("bench name = %q", replayed.Bench)
	}
}

func TestPublicAPIX86AndPrograms(t *testing.T) {
	alpha := svf.ByName("197.parser")
	x86 := svf.X86Variant(alpha)
	if x86.SubWordFrac == 0 {
		t.Error("X86Variant should enable partial-word references")
	}
	prog, err := svf.BuildProgram(x86)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumFuncs() != x86.NumFuncs {
		t.Errorf("NumFuncs = %d, want %d", prog.NumFuncs(), x86.NumFuncs)
	}
}

func TestPublicAPIRSE(t *testing.T) {
	r, err := svf.Run(svf.ByName("186.crafty"), svf.Options{
		Policy: svf.PolicyRSE, StackPorts: 2, MaxInsts: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.RSE == nil || r.RSE.RegRefs == 0 {
		t.Error("RSE run produced no register references")
	}
}

func TestPublicAPISweep(t *testing.T) {
	res, err := svf.Sweep(svf.ExperimentConfig{
		MaxInsts:   20_000,
		Benchmarks: []*svf.Profile{svf.ByName("164.gzip")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Error("empty sweep")
	}
}

// TestFacadeExperimentsSmoke drives every experiment forwarder once with a
// minimal budget, ensuring the public API surface works end to end.
func TestFacadeExperimentsSmoke(t *testing.T) {
	cfg := svf.ExperimentConfig{
		MaxInsts:     15_000,
		TrafficInsts: 60_000,
		Benchmarks:   []*svf.Profile{svf.ByName("164.gzip")},
	}
	if r, err := svf.Fig1(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig1: %v", err)
	}
	if r, err := svf.Fig2(cfg); err != nil || len(r.Series) != 1 {
		t.Errorf("Fig2: %v", err)
	}
	if r, err := svf.Fig3(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig3: %v", err)
	}
	if r, err := svf.Fig5(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig5: %v", err)
	}
	if r, err := svf.Fig6(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig6: %v", err)
	}
	if r, err := svf.Fig7(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig7: %v", err)
	}
	if r, err := svf.Fig8(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig8: %v", err)
	}
	if r, err := svf.Fig9(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Fig9: %v", err)
	}
	if r, err := svf.Table3(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Table3: %v", err)
	}
	if r, err := svf.Table4(cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("Table4: %v", err)
	}
	x86cfg := cfg
	if r, err := svf.X86(x86cfg); err != nil || len(r.Rows) != 1 {
		t.Errorf("X86: %v", err)
	}
}

// ExampleCharacterize reproduces the paper's workload-characterisation
// methodology (§2) on one benchmark.
func ExampleCharacterize() {
	c, _ := svf.Characterize(svf.ByName("256.bzip2"), 200_000)
	fmt.Println(c.StackFrac() > 0.3)      // most memory refs hit the stack
	fmt.Println(c.MeanOffsetBytes() < 64) // ...very close to the TOS
	fmt.Println(c.Within8KB() > 0.99)     // ...within one 8KB window
	// Output:
	// true
	// true
	// true
}

// ExampleStackTraffic shows the liveness-semantics traffic gap of Table 3.
func ExampleStackTraffic() {
	gcc := svf.ByName("176.gcc")
	scIn, _, _, _ := svf.StackTraffic(gcc, svf.PolicyStackCache, 2<<10, 300_000, 0)
	svfIn, _, _, _ := svf.StackTraffic(gcc, svf.PolicySVF, 2<<10, 300_000, 0)
	fmt.Println(svfIn*5 < scIn) // the SVF fills far fewer quadwords
	// Output: true
}

func TestPublicAPIJournaledCampaign(t *testing.T) {
	dir := t.TempDir()
	prof := svf.ByName("175.vpr")
	opt := svf.Options{MaxInsts: 20_000}

	j, rep, err := svf.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, restored := svf.NewJournaledRunCache(j, rep)
	if restored.Restored() != 0 {
		t.Fatalf("fresh journal restored %d cells", restored.Restored())
	}
	first, err := c.Run(nil, prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rep2, err := svf.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2, restored2 := svf.NewJournaledRunCache(j2, rep2)
	if restored2.Runs != 1 {
		t.Fatalf("restore stats = %+v, want the completed run", restored2)
	}
	again, err := c2.Run(nil, prof, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again.Pipe.Cycles != first.Pipe.Cycles || again.Pipe.Committed != first.Pipe.Committed {
		t.Errorf("restored run differs: %d/%d cycles, %d/%d committed",
			again.Pipe.Cycles, first.Pipe.Cycles, again.Pipe.Committed, first.Pipe.Committed)
	}
	if st := c2.Stats(); st.Misses != 0 {
		t.Errorf("restored cell simulated (%+v)", st)
	}
}
