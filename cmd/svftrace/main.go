// Command svftrace records, inspects and replays binary instruction
// traces, decoupling workload generation from simulation (the classic
// trace-driven workflow: generate once, simulate many configurations).
//
// Usage:
//
//	svftrace record -bench 186.crafty -insts 1000000 -o crafty.trc
//	svftrace info crafty.trc
//	svftrace replay -policy svf -stackports 2 crafty.trc
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"

	"svf/internal/isa"
	"svf/internal/pipeline"
	"svf/internal/regions"
	"svf/internal/sim"
	"svf/internal/synth"
	"svf/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: svftrace record|info|replay [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "svftrace: %v\n", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "186.crafty", "benchmark to record")
	insts := fs.Int("insts", 1_000_000, "instructions to record")
	out := fs.String("o", "trace.trc", "output file")
	fs.Parse(args)

	prof := synth.ByName(*bench)
	if prof == nil {
		fatal(fmt.Errorf("unknown benchmark %q", *bench))
	}
	insts64, err := synth.Trace(prof, *insts)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := trace.Write(w, insts64); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d instructions of %s to %s\n", len(insts64), prof.ID(), *out)
}

func load(path string) []isa.Inst {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	insts, err := trace.Read(bufio.NewReader(f))
	if err != nil {
		fatal(err)
	}
	return insts
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("info needs a trace file"))
	}
	insts := load(fs.Arg(0))
	layout := regions.DefaultLayout()

	var kinds [isa.NumKinds]uint64
	var mem, stack, sp uint64
	for i := range insts {
		in := &insts[i]
		kinds[in.Kind]++
		if in.IsMem() {
			mem++
			if layout.InStack(in.Addr) {
				stack++
				if in.SPRelative() {
					sp++
				}
			}
		}
	}
	fmt.Printf("instructions   %d\n", len(insts))
	for k := isa.Kind(0); int(k) < isa.NumKinds; k++ {
		if kinds[k] > 0 {
			fmt.Printf("  %-8s %10d (%5.1f%%)\n", k, kinds[k], 100*float64(kinds[k])/float64(len(insts)))
		}
	}
	if mem > 0 {
		fmt.Printf("memory refs    %d (%.1f%% of instructions)\n", mem, 100*float64(mem)/float64(len(insts)))
		fmt.Printf("stack refs     %d (%.1f%% of memory)\n", stack, 100*float64(stack)/float64(mem))
		if stack > 0 {
			fmt.Printf("$sp-relative   %d (%.1f%% of stack)\n", sp, 100*float64(sp)/float64(stack))
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	policy := fs.String("policy", "baseline", "baseline, svf or stackcache")
	dl1Ports := fs.Int("dl1ports", 2, "DL1 ports")
	stackPorts := fs.Int("stackports", 2, "stack structure ports")
	size := fs.Int("size", 8192, "stack structure bytes")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("replay needs a trace file"))
	}
	insts := load(fs.Arg(0))

	opt := sim.Options{
		DL1Ports:       *dl1Ports,
		StackSizeBytes: *size,
		StackPorts:     *stackPorts,
		MaxInsts:       len(insts),
	}
	switch *policy {
	case "baseline":
		opt.Policy = pipeline.PolicyNone
	case "svf":
		opt.Policy = pipeline.PolicySVF
	case "stackcache":
		opt.Policy = pipeline.PolicyStackCache
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}
	r, err := sim.RunStream(context.Background(), fs.Arg(0), trace.NewSliceStream(insts), opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d instructions in %d cycles (IPC %.3f, policy %s)\n",
		r.Pipe.Committed, r.Cycles(), r.IPC(), *policy)
}
