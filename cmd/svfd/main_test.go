package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// svfdBin is the binary built once by TestMain for the CLI-level drills.
var svfdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "svfd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	svfdBin = filepath.Join(dir, "svfd")
	out, err := exec.Command("go", "build", "-o", svfdBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building svfd: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// daemon is one running svfd process under test.
type daemon struct {
	cmd    *exec.Cmd
	addr   string // service listener, from "svfd: listening on ..."
	obs    string // observability listener, from "obs: listening on ..."
	stderr *bytes.Buffer
	stdout *bytes.Buffer
	mu     sync.Mutex
	waited bool
	state  *os.ProcessState
}

// startDaemon launches svfd and waits for the ready line, harvesting the
// printed listener addresses on the way.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{stderr: &bytes.Buffer{}, stdout: &bytes.Buffer{}}
	d.cmd = exec.Command(svfdBin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	d.cmd.Stderr = d.stderr
	pipe, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		d.wait()
	})
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stdout.WriteString(line + "\n")
			if a, ok := strings.CutPrefix(line, "svfd: listening on "); ok {
				d.addr = a
			}
			if a, ok := strings.CutPrefix(line, "obs: listening on "); ok {
				d.obs = a
			}
			d.mu.Unlock()
			if line == "svfd: ready" {
				close(ready)
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("svfd never became ready; stderr:\n%s", d.stderr.String())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addr == "" {
		t.Fatal("svfd printed no listener address")
	}
	return d
}

// wait reaps the process once and returns its exit code.
func (d *daemon) wait() int {
	d.mu.Lock()
	if !d.waited {
		d.waited = true
		d.mu.Unlock()
		err := d.cmd.Wait()
		d.mu.Lock()
		if ee, ok := err.(*exec.ExitError); ok {
			d.state = ee.ProcessState
		} else {
			d.state = d.cmd.ProcessState
		}
	}
	defer d.mu.Unlock()
	if d.state == nil {
		return 0
	}
	return d.state.ExitCode()
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func smallSpec() string {
	return `{"cells":[
		{"kind":"run","bench":"186.crafty.ref","opt":{"Policy":1,"SVFInfinite":true,"MaxInsts":2000}},
		{"kind":"traffic","bench":"186.crafty.ref","policy":"svf","max_insts":2000}
	]}`
}

func postSpec(t *testing.T, d *daemon, spec string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(d.url("/v1/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func waitDone(t *testing.T, d *daemon, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/v1/jobs/" + id))
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st["state"] == "done" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish; stderr:\n%s", id, d.stderr.String())
	return nil
}

func getResults(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/v1/jobs/" + id + "/results"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeAndGracefulDrain: the daemon serves the full API (including
// /readyz reporting both bound listener addresses), then SIGTERM drains
// and exits 0.
func TestServeAndGracefulDrain(t *testing.T) {
	d := startDaemon(t, "-obs-addr", "127.0.0.1:0")
	if d.obs == "" {
		t.Fatal("svfd printed no obs listener address")
	}

	// /readyz exposes both bound addresses for port discovery.
	resp, err := http.Get(d.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready["ready"] != true || ready["listen"] != d.addr || ready["obs"] != d.obs {
		t.Errorf("/readyz = %v, want ready with listen=%s obs=%s", ready, d.addr, d.obs)
	}

	code, sub := postSpec(t, d, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%v)", code, sub)
	}
	id := sub["id"].(string)
	waitDone(t, d, id)
	if lines := bytes.Split(bytes.TrimSpace(getResults(t, d, id)), []byte("\n")); len(lines) != 2 {
		t.Fatalf("results lines = %d, want 2", len(lines))
	}

	// The obs listener serves the classic endpoints.
	for _, path := range []string{"/metrics", "/progress"} {
		resp, err := http.Get("http://" + d.obs + path)
		if err != nil {
			t.Fatalf("obs %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("obs %s = %d", path, resp.StatusCode)
		}
	}

	// SIGTERM: graceful drain, exit 0, journals flushed (none here), the
	// drain narrated on stderr.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != 0 {
		t.Fatalf("exit code after SIGTERM = %d, want 0; stderr:\n%s", code, d.stderr.String())
	}
	if !strings.Contains(d.stderr.String(), "drained") {
		t.Errorf("stderr does not narrate the drain:\n%s", d.stderr.String())
	}
}

// TestDaemonKillResume is the CLI kill -9 drill: the daemon-kill
// injection terminates the daemon (exit 137) right after a job's
// accepted record is durable; a restart on the same journal — now over a
// real two-worker fleet — replays the job, finishes it, and serves
// results byte-identical to an undisturbed daemon's.
func TestDaemonKillResume(t *testing.T) {
	dir := t.TempDir()

	killed := startDaemon(t, "-journal", dir, "-inject", "daemon-kill=1")
	// The process dies inside the accept path; the response may be lost.
	http.Post(killed.url("/v1/jobs"), "application/json", strings.NewReader(smallSpec()))
	if code := killed.wait(); code != 137 {
		t.Fatalf("injected kill: exit code = %d, want 137; stderr:\n%s", code, killed.stderr.String())
	}

	revived := startDaemon(t, "-journal", dir, "-workers", "2")
	// The client lost the 202, so discover the replayed job via /v1/progress.
	resp, err := http.Get(revived.url("/v1/progress"))
	if err != nil {
		t.Fatal(err)
	}
	var prog map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	jobs, _ := prog["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("restarted daemon lost the accepted job: progress = %v", prog)
	}
	id := jobs[0].(map[string]any)["id"].(string)

	st := waitDone(t, revived, id)
	if st["partial_failure"] != false {
		t.Fatalf("replayed job degraded: %v", st)
	}
	got := getResults(t, revived, id)

	// Reference: the same spec on an undisturbed journal-less daemon.
	ref := startDaemon(t)
	code, sub := postSpec(t, ref, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	if sub["id"] != id {
		t.Fatalf("content fingerprint diverged: %v vs %s", sub["id"], id)
	}
	waitDone(t, ref, id)
	if want := getResults(t, ref, id); !bytes.Equal(got, want) {
		t.Errorf("post-kill results differ from the undisturbed run:\n%s\nvs\n%s", got, want)
	}
}

// TestOverloadSheds429: with -max-jobs 1 a second concurrent job sheds
// with 429 + Retry-After while the first is still running.
func TestOverloadSheds429(t *testing.T) {
	d := startDaemon(t, "-max-jobs", "1")
	slow := `{"cells":[{"kind":"run","bench":"186.crafty.ref","opt":{"Policy":1,"SVFInfinite":true,"MaxInsts":30000000}}]}`
	if code, _ := postSpec(t, d, slow); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	resp, err := http.Post(d.url("/v1/jobs"), "application/json",
		strings.NewReader(`{"cells":[{"kind":"run","bench":"164.gzip.log","opt":{"MaxInsts":2000}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestWorkerModeRefusesJournal: a worker handed the daemon's journal flag
// is a usage error, not a lock fight.
func TestWorkerModeRefusesJournal(t *testing.T) {
	cmd := exec.Command(svfdBin, "-worker", "-journal", t.TempDir())
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
	if !strings.Contains(stderr.String(), "journal") {
		t.Errorf("stderr does not explain the refusal:\n%s", stderr.String())
	}
}
