package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// svfdBin is the binary built once by TestMain for the CLI-level drills.
var svfdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "svfd-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	svfdBin = filepath.Join(dir, "svfd")
	out, err := exec.Command("go", "build", "-o", svfdBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building svfd: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// daemon is one running svfd process under test.
type daemon struct {
	cmd    *exec.Cmd
	addr   string // service listener, from "svfd: listening on ..."
	obs    string // observability listener, from "obs: listening on ..."
	stderr *bytes.Buffer
	stdout *bytes.Buffer
	mu     sync.Mutex
	waited bool
	state  *os.ProcessState
}

// startDaemon launches svfd and waits for the ready line, harvesting the
// printed listener addresses on the way.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{stderr: &bytes.Buffer{}, stdout: &bytes.Buffer{}}
	d.cmd = exec.Command(svfdBin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	d.cmd.Stderr = d.stderr
	pipe, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.cmd.Process.Kill()
		d.wait()
	})
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stdout.WriteString(line + "\n")
			if a, ok := strings.CutPrefix(line, "svfd: listening on "); ok {
				d.addr = a
			}
			if a, ok := strings.CutPrefix(line, "obs: listening on "); ok {
				d.obs = a
			}
			d.mu.Unlock()
			if line == "svfd: ready" {
				close(ready)
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("svfd never became ready; stderr:\n%s", d.stderr.String())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.addr == "" {
		t.Fatal("svfd printed no listener address")
	}
	return d
}

// wait reaps the process once and returns its exit code.
func (d *daemon) wait() int {
	d.mu.Lock()
	if !d.waited {
		d.waited = true
		d.mu.Unlock()
		err := d.cmd.Wait()
		d.mu.Lock()
		if ee, ok := err.(*exec.ExitError); ok {
			d.state = ee.ProcessState
		} else {
			d.state = d.cmd.ProcessState
		}
	}
	defer d.mu.Unlock()
	if d.state == nil {
		return 0
	}
	return d.state.ExitCode()
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

func smallSpec() string {
	return `{"cells":[
		{"kind":"run","bench":"186.crafty.ref","opt":{"Policy":1,"SVFInfinite":true,"MaxInsts":2000}},
		{"kind":"traffic","bench":"186.crafty.ref","policy":"svf","max_insts":2000}
	]}`
}

func postSpec(t *testing.T, d *daemon, spec string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(d.url("/v1/jobs"), "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func waitDone(t *testing.T, d *daemon, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url("/v1/jobs/" + id))
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st["state"] == "done" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish; stderr:\n%s", id, d.stderr.String())
	return nil
}

func getResults(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/v1/jobs/" + id + "/results"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServeAndGracefulDrain: the daemon serves the full API (including
// /readyz reporting both bound listener addresses), then SIGTERM drains
// and exits 0.
func TestServeAndGracefulDrain(t *testing.T) {
	d := startDaemon(t, "-obs-addr", "127.0.0.1:0")
	if d.obs == "" {
		t.Fatal("svfd printed no obs listener address")
	}

	// /readyz exposes both bound addresses for port discovery.
	resp, err := http.Get(d.url("/readyz"))
	if err != nil {
		t.Fatal(err)
	}
	var ready map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready["ready"] != true || ready["listen"] != d.addr || ready["obs"] != d.obs {
		t.Errorf("/readyz = %v, want ready with listen=%s obs=%s", ready, d.addr, d.obs)
	}

	code, sub := postSpec(t, d, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%v)", code, sub)
	}
	id := sub["id"].(string)
	waitDone(t, d, id)
	if lines := bytes.Split(bytes.TrimSpace(getResults(t, d, id)), []byte("\n")); len(lines) != 2 {
		t.Fatalf("results lines = %d, want 2", len(lines))
	}

	// The obs listener serves the classic endpoints.
	for _, path := range []string{"/metrics", "/progress"} {
		resp, err := http.Get("http://" + d.obs + path)
		if err != nil {
			t.Fatalf("obs %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("obs %s = %d", path, resp.StatusCode)
		}
	}

	// SIGTERM: graceful drain, exit 0, journals flushed (none here), the
	// drain narrated on stderr.
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != 0 {
		t.Fatalf("exit code after SIGTERM = %d, want 0; stderr:\n%s", code, d.stderr.String())
	}
	if !strings.Contains(d.stderr.String(), "drained") {
		t.Errorf("stderr does not narrate the drain:\n%s", d.stderr.String())
	}
}

// TestDaemonKillResume is the CLI kill -9 drill: the daemon-kill
// injection terminates the daemon (exit 137) right after a job's
// accepted record is durable; a restart on the same journal — now over a
// real two-worker fleet — replays the job, finishes it, and serves
// results byte-identical to an undisturbed daemon's.
func TestDaemonKillResume(t *testing.T) {
	dir := t.TempDir()

	killed := startDaemon(t, "-journal", dir, "-inject", "daemon-kill=1")
	// The process dies inside the accept path; the response may be lost.
	http.Post(killed.url("/v1/jobs"), "application/json", strings.NewReader(smallSpec()))
	if code := killed.wait(); code != 137 {
		t.Fatalf("injected kill: exit code = %d, want 137; stderr:\n%s", code, killed.stderr.String())
	}

	revived := startDaemon(t, "-journal", dir, "-workers", "2")
	// The client lost the 202, so discover the replayed job via /v1/progress.
	resp, err := http.Get(revived.url("/v1/progress"))
	if err != nil {
		t.Fatal(err)
	}
	var prog map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	jobs, _ := prog["jobs"].([]any)
	if len(jobs) != 1 {
		t.Fatalf("restarted daemon lost the accepted job: progress = %v", prog)
	}
	id := jobs[0].(map[string]any)["id"].(string)

	st := waitDone(t, revived, id)
	if st["partial_failure"] != false {
		t.Fatalf("replayed job degraded: %v", st)
	}
	got := getResults(t, revived, id)

	// Reference: the same spec on an undisturbed journal-less daemon.
	ref := startDaemon(t)
	code, sub := postSpec(t, ref, smallSpec())
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	if sub["id"] != id {
		t.Fatalf("content fingerprint diverged: %v vs %s", sub["id"], id)
	}
	waitDone(t, ref, id)
	if want := getResults(t, ref, id); !bytes.Equal(got, want) {
		t.Errorf("post-kill results differ from the undisturbed run:\n%s\nvs\n%s", got, want)
	}
}

// TestOverloadSheds429: with -max-jobs 1 a second concurrent job sheds
// with 429 + Retry-After while the first is still running.
func TestOverloadSheds429(t *testing.T) {
	d := startDaemon(t, "-max-jobs", "1")
	slow := `{"cells":[{"kind":"run","bench":"186.crafty.ref","opt":{"Policy":1,"SVFInfinite":true,"MaxInsts":30000000}}]}`
	if code, _ := postSpec(t, d, slow); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	resp, err := http.Post(d.url("/v1/jobs"), "application/json",
		strings.NewReader(`{"cells":[{"kind":"run","bench":"164.gzip.log","opt":{"MaxInsts":2000}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestWorkerModeRefusesJournal: a worker handed the daemon's journal flag
// is a usage error, not a lock fight.
func TestWorkerModeRefusesJournal(t *testing.T) {
	cmd := exec.Command(svfdBin, "-worker", "-journal", t.TempDir())
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want code 2", err)
	}
	if !strings.Contains(stderr.String(), "journal") {
		t.Errorf("stderr does not explain the refusal:\n%s", stderr.String())
	}
}

// getTrace fetches a job's Perfetto trace document from the daemon.
func getTrace(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/v1/jobs/" + id + "/trace"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTraceKillResume is the acceptance drill for distributed tracing: a
// daemon completes one job (its cells now durable in the cells journal),
// accepts a second overlapping job, and is kill -9'd mid-accept. The
// restarted daemon replays the second job, serves its previously-journaled
// cell as a journal.replay span, and GET /v1/jobs/{id}/trace returns a
// complete, fully-parented span tree, byte-identical across refetches.
func TestTraceKillResume(t *testing.T) {
	dir := t.TempDir()
	runCell := `{"kind":"run","bench":"186.crafty.ref","opt":{"Policy":1,"SVFInfinite":true,"MaxInsts":2000}}`
	specA := `{"cells":[` + runCell + `,{"kind":"traffic","bench":"186.crafty.ref","policy":"svf","max_insts":2000}]}`
	specB := `{"cells":[` + runCell + `]}`

	// Phase 1: job A completes (cells journaled); the kill fires inside
	// job B's accept, after its accepted record is durable.
	d1 := startDaemon(t, "-journal", dir, "-inject", "daemon-kill=2")
	code, subA := postSpec(t, d1, specA)
	if code != http.StatusAccepted {
		t.Fatalf("submit A = %d", code)
	}
	if subA["trace_id"] == "" || subA["trace_url"] == "" {
		t.Fatalf("submit response missing trace fields: %v", subA)
	}
	idA := subA["id"].(string)
	waitDone(t, d1, idA)
	http.Post(d1.url("/v1/jobs"), "application/json", strings.NewReader(specB))
	if code := d1.wait(); code != 137 {
		t.Fatalf("injected kill: exit = %d, want 137; stderr:\n%s", code, d1.stderr.String())
	}

	// Phase 2: restart over the same journal with a worker fleet. Job B
	// replays, its crafty cell restores from the cells journal, and a
	// deduped resubmission recovers the lost job ID and trace ID.
	d2 := startDaemon(t, "-journal", dir, "-workers", "2")
	code, subB := postSpec(t, d2, specB)
	if code != http.StatusOK || subB["deduped"] != true {
		t.Fatalf("resubmit B = %d (%v), want 200 deduped", code, subB)
	}
	idB := subB["id"].(string)
	traceB := subB["trace_id"].(string)
	if traceB == "" || idB == idA {
		t.Fatalf("replayed job B has id=%s trace=%s", idB, traceB)
	}
	waitDone(t, d2, idB)

	first := getTrace(t, d2, idB)
	second := getTrace(t, d2, idB)
	if !bytes.Equal(first, second) {
		t.Error("trace document differs between refetches")
	}
	if !bytes.Contains(first, []byte("journal.replay")) {
		t.Errorf("replayed trace has no journal.replay span:\n%s", first)
	}

	// Lint the span tree: one root, every parent resolves, sane times.
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	str_ := func(v any) string { s, _ := v.(string); return s }
	ids := map[string]bool{}
	roots := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		ids[str_(ev.Args["span"])] = true
		if str_(ev.Args["parent"]) == "" {
			roots++
		}
		if ev.TS < 0 || ev.Dur <= 0 {
			t.Errorf("span %s has ts=%d dur=%d", str_(ev.Args["span"]), ev.TS, ev.Dur)
		}
		if str_(ev.Args["trace"]) != traceB {
			t.Errorf("span carries trace %q, want %q", str_(ev.Args["trace"]), traceB)
		}
	}
	if len(ids) == 0 || roots != 1 {
		t.Fatalf("span tree has %d spans and %d roots, want >0 and exactly 1", len(ids), roots)
	}
	for _, ev := range doc.TraceEvents {
		if p := str_(ev.Args["parent"]); ev.Ph == "X" && p != "" && !ids[p] {
			t.Errorf("orphan span %s: parent %s not in document", str_(ev.Args["span"]), p)
		}
	}

	// The latency histograms are exposed with exemplars on the service's
	// own /metrics endpoint when scraped as OpenMetrics (exemplars are not
	// part of the classic text format).
	req, err := http.NewRequest("GET", d2.url("/metrics"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{"svf_job_queue_seconds", "svf_cell_run_seconds", "svf_lease_wait_seconds"} {
		if !bytes.Contains(metrics, []byte(name+"_count")) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !bytes.Contains(metrics, []byte(`trace_id="`)) {
		t.Error("/metrics has no trace exemplars")
	}
}
