// Command svfd is the simulation-as-a-service daemon (DESIGN.md §5h): a
// long-lived HTTP front end over the same run cache, journal, and
// lease-supervised shard pool the svfexp campaign runner uses.
//
// Clients POST job specs to /v1/jobs and get back a content-fingerprint
// job ID; GET /v1/jobs/{id} reports per-cell state (including the
// partial-failure report), GET /v1/jobs/{id}/results streams NDJSON
// results as cells finish, GET /v1/jobs/{id}/trace serves the job's
// span tree as Perfetto-loadable trace JSON, GET /v1/progress mirrors
// the campaign progress snapshot, and /healthz, /readyz, /metrics serve
// the usual operational endpoints. Admission is bounded: at most -max-jobs
// outstanding jobs and -max-queue-bytes of queued spec bytes; beyond
// either, submissions shed with 429 + Retry-After instead of growing
// without bound. Identical submissions coalesce onto one job.
//
// With -journal DIR the daemon is crash-tolerant: accepted jobs are
// journaled under DIR/jobs before the 202 is sent (the append fsyncs),
// and completed cells under DIR/cells through the run cache's journal. A
// kill -9'd daemon restarted on the same directory replays both —
// finished cells restore from disk, accepted-but-unfinished jobs re-run
// only their missing cells, and a subsequent results fetch is
// byte-identical to an uninterrupted one. Unlike svfexp there is no
// -resume flag: resuming is a daemon's normal startup.
//
// With -workers N cells execute on N supervised worker processes (this
// binary re-exec'd with -worker) exactly as in svfexp: time-bounded
// leases, crash reclaim, poison-cell quarantine. SIGTERM or SIGINT
// drains: admission flips to 503, in-flight jobs finish (bounded by
// -drain-timeout), journals flush, and the process exits 0.
//
// -inject accepts the faultinject grammar including the service-level
// plans accept-stall=N, client-disconnect=N and daemon-kill=N for chaos
// drills (see svf/internal/faultinject).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"svf/internal/faultinject"
	"svf/internal/journal"
	"svf/internal/service"
	"svf/internal/shard"
	"svf/internal/sim"
	"svf/internal/telemetry"
)

func main() { os.Exit(run()) }

func run() int {
	listen := flag.String("listen", "127.0.0.1:0", `service listener address (":0" picks an ephemeral port, reported as "svfd: listening on ADDR")`)
	obsAddr := flag.String("obs-addr", "", `optional observability listener ("127.0.0.1:0"): /metrics, /progress, /debug/pprof`)
	journalDir := flag.String("journal", "", "root directory for the crash-safe journals (DIR/jobs for job state, DIR/cells for completed cells); empty runs in-memory only")
	parallel := flag.Int("parallel", 0, "concurrent cell executions across all jobs (0 = 4, or -workers when sharded)")
	maxJobs := flag.Int("max-jobs", 16, "outstanding (queued+running) job limit; admission beyond it sheds with 429")
	maxQueueBytes := flag.Int64("max-queue-bytes", 32<<20, "byte budget for outstanding job specs; admission beyond it sheds with 429")
	maxBody := flag.Int64("max-body", 8<<20, "per-request body cap (413 beyond it)")
	jobDeadline := flag.Duration("job-deadline", 0, "default wall-clock deadline per job (0 = unbounded; specs may set their own)")
	cellDeadline := flag.Duration("cell-deadline", 0, "default wall-clock deadline per cell (0 = unbounded; specs may set their own)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	retries := flag.Int("retries", 1, "re-executions allowed per faulted cell before it is latched as permanently failed")
	inject := flag.String("inject", "", `deterministic fault-injection spec, e.g. "daemon-kill=2,seed=7" (see svf/internal/faultinject)`)
	eventsPath := flag.String("events", "", "append structured NDJSON lifecycle events to this file")
	workers := flag.Int("workers", 0, "execute cells on this many supervised worker processes (0 = in-process)")
	workerMode := flag.Bool("worker", false, "run as a shard worker speaking frames over stdin/stdout (internal; spawned by -workers)")
	leaseTTL := flag.Duration("lease", 30*time.Second, "sharded mode: lease TTL before a silent worker's cell is reclaimed")
	heartbeat := flag.Duration("heartbeat", 0, "sharded mode: worker heartbeat period (0 = lease/4)")
	poisonK := flag.Int("poison-k", 3, "sharded mode: quarantine a cell once it has killed this many distinct workers")
	flag.Parse()

	plan, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfd: -inject: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		// Workers are stateless executors; the journals belong to the
		// daemon (the advisory flock would refuse anyway, but refusing the
		// flag makes the mistake a clear usage error).
		if *journalDir != "" {
			fmt.Fprintln(os.Stderr, "svfd: -worker: workers must not open the journals (-journal belongs to the daemon)")
			return 2
		}
		w := &shard.Worker{In: os.Stdin, Out: os.Stdout}
		if err := w.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "svfd: worker: %v\n", err)
			return 1
		}
		return 0
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	// Unlike svfexp, telemetry is always on: /metrics and /v1/progress are
	// part of the service API, not an opt-in diagnostic. The tracer serves
	// GET /v1/jobs/{id}/trace and is shared by the service, the shard pool
	// and the run cache so their spans land in one tree per job.
	registry := telemetry.NewRegistry()
	progress := telemetry.NewProgress()
	tracer := telemetry.NewTracer()
	var events *telemetry.EventLog
	if *eventsPath != "" {
		f, err := os.OpenFile(*eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -events: %v\n", err)
			return 2
		}
		events = telemetry.NewEventLog(f)
		defer events.Close()
		tracer.SetEvents(events)
	}

	// Storage. With -journal, two journals under one root: completed cells
	// (the run cache's) and job state (the service's). Without it, a
	// memory store still keeps retry attempts and poison latches for the
	// process lifetime.
	cache := sim.NewRunCacheWithStore(sim.NewMemStore())
	var cellsJr, jobsJr *journal.Journal
	var jobsReplay *journal.Replay
	if *journalDir != "" {
		jopts := journal.Options{
			Inject: plan,
			// An injected journal crash must look like process death.
			OnCrash: func() { os.Exit(137) },
		}
		if events != nil {
			jopts.OnSync = func(appends, syncBatches uint64) {
				events.Emit(telemetry.Event{Type: "journal_flush", Records: appends, SyncBatches: syncBatches})
			}
		}
		var cellsRep *journal.Replay
		cellsJr, cellsRep, err = journal.Open(filepath.Join(*journalDir, "cells"), jopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -journal: %v\n", err)
			return 2
		}
		defer cellsJr.Close()
		var restored sim.RestoreStats
		cache, restored = sim.NewRunCacheWithJournal(cellsJr, cellsRep)
		logf("svfd: cell journal: %s", restored)

		jobsJr, jobsReplay, err = journal.Open(filepath.Join(*journalDir, "jobs"), jopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -journal: %v\n", err)
			return 2
		}
		defer jobsJr.Close()
	}

	var pool *shard.Pool
	if *workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -workers: %v\n", err)
			return 1
		}
		pool, err = shard.NewPool(shard.Config{
			Workers:   *workers,
			LeaseTTL:  *leaseTTL,
			Heartbeat: *heartbeat,
			PoisonK:   *poisonK,
			Plan:      plan,
			Spawn:     shard.CommandSpawner(exe, "-worker"),
			Logf:      func(format string, args ...any) { logf("svfd: "+format, args...) },
			Registry:  registry,
			Events:    events,
			Tracer:    tracer,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -workers: %v\n", err)
			return 1
		}
		defer pool.Close()
		cache.SetExecutor(pool)
		progress.SetShard(func() telemetry.ShardStatus { return pool.Status().Telemetry() })
		if *parallel == 0 {
			*parallel = *workers
		}
	}
	cache.SetRetries(*retries)
	cache.SetObserver(&sim.Observer{Events: events, Registry: registry, Progress: progress, Tracer: tracer})

	srv, err := service.New(service.Config{
		Cache:               cache,
		Jobs:                jobsJr,
		JobsReplay:          jobsReplay,
		Parallel:            *parallel,
		MaxJobs:             *maxJobs,
		MaxQueueBytes:       *maxQueueBytes,
		MaxBodyBytes:        *maxBody,
		DefaultJobDeadline:  *jobDeadline,
		DefaultCellDeadline: *cellDeadline,
		Plan:                plan,
		Registry:            registry,
		Progress:            progress,
		Events:              events,
		Tracer:              tracer,
		Logf:                logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfd: %v\n", err)
		return 2
	}

	// Bind every listener before declaring readiness. Both lines use the
	// same "listening on ADDR" shape so scripts and CI discover ephemeral
	// ports the same way for either listener.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfd: -listen: %v\n", err)
		return 2
	}
	fmt.Printf("svfd: listening on %s\n", ln.Addr())
	var obsBound string
	if *obsAddr != "" {
		obsSrv := &telemetry.Server{Registry: registry, Progress: progress}
		obsBound, err = obsSrv.Listen(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfd: -obs-addr: %v\n", err)
			return 2
		}
		defer obsSrv.Close()
		fmt.Printf("obs: listening on %s\n", obsBound)
	}
	srv.SetAddrs(ln.Addr().String(), obsBound)

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	events.Emit(telemetry.Event{Type: "daemon_start", Detail: ln.Addr().String()})
	fmt.Println("svfd: ready")

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "svfd: serve: %v\n", err)
		return 1
	}

	// Graceful drain: admission flips to 503 immediately, in-flight jobs
	// get -drain-timeout to finish, then the HTTP server closes and the
	// deferred journal Closes flush. Exit 0 — a drained daemon is a
	// successful daemon.
	stop() // a second signal kills immediately via default disposition
	logf("svfd: signal received; draining")
	_ = srv.Drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = httpSrv.Close()
	}
	events.Emit(telemetry.Event{Type: "daemon_drained"})
	logf("svfd: drained; exiting")
	return 0
}
