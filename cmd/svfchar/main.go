// Command svfchar reproduces the paper's workload characterisation
// (Figures 1-3) and can dump the raw Figure 2 stack-depth series.
//
// Usage:
//
//	svfchar -fig 1                  # region/method breakdown
//	svfchar -fig 2                  # stack-depth summary
//	svfchar -fig 2 -series 186.crafty.ref > crafty.csv
//	svfchar -fig 3                  # offset-from-TOS CDF
//	svfchar -families -fig 2        # same, over the stack-stress families
//	svfchar -families -verify       # calibration check for the families
//
// -families swaps the twelve Table 1 SPEC profiles for the four
// stack-stress workload families (vm.stack, recurse.deep, coro.switch,
// alloca.dyn); -verify then applies each family's own worst-case depth
// bound, since coroutine stacks legitimately push $sp far beyond the
// single-stack burst target.
package main

import (
	"flag"
	"fmt"
	"os"

	"svf/internal/experiments"
	"svf/internal/regions"
	"svf/internal/sim"
	"svf/internal/synth"
)

func main() {
	fig := flag.Int("fig", 1, "figure to reproduce (1, 2 or 3)")
	insts := flag.Int("insts", 2_000_000, "instructions to characterise per benchmark")
	series := flag.String("series", "", "dump one benchmark's Figure 2 depth series as CSV (benchmark id)")
	verify := flag.Bool("verify", false, "check every profile's achieved mix against its calibration targets")
	families := flag.Bool("families", false, "characterise the stack-stress workload families instead of the Table 1 SPEC profiles")
	traceCacheMB := flag.Int64("trace-cache-mb", sim.DefaultTraceCacheBytes>>20, "memory budget (MiB) for the recorded-trace cache; 0 disables trace recording")
	flag.Parse()
	sim.SetTraceCacheBudget(*traceCacheMB << 20)

	profiles := synth.Benchmarks()
	if *families {
		profiles = synth.Families()
	}
	cfg := experiments.Config{TrafficInsts: *insts, Benchmarks: profiles}

	if *verify {
		verifyProfiles(profiles, *insts)
		return
	}

	if *series != "" {
		prof := synth.ByName(*series)
		if prof == nil {
			fmt.Fprintf(os.Stderr, "svfchar: unknown benchmark %q\n", *series)
			os.Exit(2)
		}
		cfg.Benchmarks = []*synth.Profile{prof}
		r, err := experiments.Fig2(cfg)
		if err != nil {
			fatal(err)
		}
		s := r.Series[0]
		fmt.Println("instruction,depth_words")
		for i := range s.X {
			fmt.Printf("%d,%d\n", s.X[i], s.Y[i])
		}
		return
	}

	switch *fig {
	case 1:
		r, err := experiments.Fig1(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 1: Run-time memory access distribution (fractions of memory references)")
		fmt.Print(r.Table())
	case 2:
		r, err := experiments.Fig2(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 2: Stack depth variation (use -series <bench> for the raw curve)")
		fmt.Print(r.Table())
	case 3:
		r, err := experiments.Fig3(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 3: Offset locality within a function (cumulative fractions)")
		fmt.Print(r.Table())
	default:
		fmt.Fprintf(os.Stderr, "svfchar: unknown figure %d\n", *fig)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "svfchar: %v\n", err)
	os.Exit(1)
}

// verifyProfiles re-measures every bundled profile against its calibration
// targets and prints a PASS/FAIL report — the tool to run after editing a
// profile or defining a new one.
func verifyProfiles(profiles []*synth.Profile, insts int) {
	fmt.Printf("%-22s %18s %18s %14s %8s\n", "benchmark", "mem/inst (tgt)", "stack frac (tgt)", "max depth", "verdict")
	failed := 0
	for _, prof := range profiles {
		g, err := synth.NewGenerator(prof)
		if err != nil {
			fatal(err)
		}
		c := synth.Characterize(g, regions.DefaultLayout(), insts)
		memOK := abs(c.MemFrac()-prof.MemFrac) <= 0.08
		stackOK := abs(c.StackFrac()-prof.StackFrac) <= 0.12
		// Coroutine stacks sit below one another, so the depth ceiling is
		// the profile's own worst case, not the single-stack burst target.
		depthOK := c.MaxDepthWords >= uint64(prof.DepthTypicalWords)/2 &&
			c.MaxDepthWords <= uint64(prof.WorstDepthWords())
		verdict := "PASS"
		if !memOK || !stackOK || !depthOK {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-22s %8.2f (%5.2f) %9.2f (%5.2f) %14d %8s\n",
			prof.ID(), c.MemFrac(), prof.MemFrac, c.StackFrac(), prof.StackFrac, c.MaxDepthWords, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "svfchar: %d profile(s) out of calibration\n", failed)
		os.Exit(1)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
