package main

import (
	"strings"
	"testing"
)

// The sharded drills below are the CLI half of the supervision story: a
// worker fleet must be an implementation detail, invisible in the results.

// A sharded sweep's stdout is byte-identical to the single-process run.
func TestShardedSweepMatchesSingleProcess(t *testing.T) {
	common := []string{"-exp", "fig5", "-insts", "3000", "-traffic", "3000"}
	clean, stderr, code := runSvfexp(t, common...)
	if code != 0 {
		t.Fatalf("single-process run: exit %d, stderr:\n%s", code, stderr)
	}
	sharded, stderr, code := runSvfexp(t, append(common, "-workers", "3")...)
	if code != 0 {
		t.Fatalf("sharded run: exit %d, stderr:\n%s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("clean sharded run wrote to stderr:\n%s", stderr)
	}
	if got, want := normalize(sharded), normalize(clean); got != want {
		t.Errorf("sharded output differs from single-process\n--- sharded ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// A worker kill -9 mid-campaign re-enqueues the lost cell and the campaign
// still completes with byte-identical output; the supervision counters are
// visible in -cache-stats.
func TestShardedWorkerKillBitIdentical(t *testing.T) {
	common := []string{"-exp", "fig5", "-insts", "3000", "-traffic", "3000"}
	clean, stderr, code := runSvfexp(t, common...)
	if code != 0 {
		t.Fatalf("single-process run: exit %d, stderr:\n%s", code, stderr)
	}
	args := append(append([]string{}, common...),
		"-workers", "3", "-retries", "3", "-inject", "worker-kill=5", "-cache-stats")
	sharded, stderr, code := runSvfexp(t, args...)
	if code != 0 {
		t.Fatalf("chaos run: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "re-enqueued") {
		t.Errorf("stderr does not report the re-enqueue:\n%s", stderr)
	}
	if !strings.Contains(sharded, "1 worker deaths") || !strings.Contains(sharded, "1 cells re-enqueued") {
		t.Errorf("-cache-stats does not show the supervision counters:\n%s", sharded)
	}
	if got, want := normalize(sharded), normalize(clean); got != want {
		t.Errorf("post-kill output differs from single-process\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// The full CI drill: a sharded, journaled campaign loses a worker to
// kill -9 AND the coordinator itself dies mid-append (exit 137, as by
// kill -9); -resume with a fresh fleet completes the campaign with output
// identical to an uninterrupted single-process run.
func TestShardedCoordinatorKillResume(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig5", "-insts", "3000", "-traffic", "3000"}

	args := append(append([]string{}, common...),
		"-journal", dir, "-workers", "3", "-retries", "3",
		"-inject", "worker-kill=3,kill-mid-write=7")
	_, stderr, code := runSvfexp(t, args...)
	if code != 137 {
		t.Fatalf("killed coordinator: exit %d, want 137; stderr:\n%s", code, stderr)
	}

	args = append(append([]string{}, common...),
		"-journal", dir, "-resume", "-workers", "3", "-retries", "3")
	resumed, stderr, code := runSvfexp(t, args...)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(resumed, "restored") {
		t.Errorf("resume did not report restored cells:\n%s", resumed)
	}

	clean, stderr, code := runSvfexp(t, common...)
	if code != 0 {
		t.Fatalf("clean run: exit %d, stderr:\n%s", code, stderr)
	}
	if got, want := normalize(resumed), normalize(clean); got != want {
		t.Errorf("resumed sharded output differs from single-process golden\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// Satellite guard: worker mode must refuse to open a journal — the journal
// (and its flock) belongs to the coordinator alone.
func TestWorkerModeRefusesJournal(t *testing.T) {
	_, stderr, code := runSvfexp(t, "-worker", "-journal", t.TempDir())
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "coordinator") {
		t.Errorf("refusal does not explain journal ownership:\n%s", stderr)
	}
}
