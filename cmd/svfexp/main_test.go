package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// svfexpBin is the binary built once by TestMain for the CLI-level tests.
var svfexpBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "svfexp-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	svfexpBin = filepath.Join(dir, "svfexp")
	out, err := exec.Command("go", "build", "-o", svfexpBin, ".").CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "building svfexp: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// runSvfexp executes the built binary and returns stdout, stderr and the
// exit code.
func runSvfexp(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(svfexpBin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("svfexp %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// normalize strips run-to-run noise from svfexp output so two invocations
// of the same suite compare equal: per-experiment wall-clock timings, the
// journal status lines, and the -cache-stats / shard supervision summaries
// (those describe how the campaign ran, not what it computed).
func normalize(s string) string {
	var out []string
	timing := regexp.MustCompile(`, [0-9.]+s\)`)
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "journal:") ||
			strings.HasPrefix(line, "run cache:") ||
			strings.HasPrefix(line, "shard:") {
			continue
		}
		out = append(out, timing.ReplaceAllString(line, ")"))
	}
	return strings.Join(out, "\n")
}

// Satellite: a clean run under -on-fault=continue prints results and
// nothing else — no fault summary, no stray stderr.
func TestCleanRunPrintsNoFaultSummary(t *testing.T) {
	stdout, stderr, code := runSvfexp(t, "-exp", "table1", "-on-fault=continue")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr:\n%s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("clean run wrote to stderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "Table 1") {
		t.Errorf("stdout missing the table:\n%s", stdout)
	}
	if strings.Contains(stdout, "fault") || strings.Contains(stderr, "fault") {
		t.Error("clean run mentioned faults")
	}
}

// A journal directory with records refuses to run without -resume, so a
// forgotten flag cannot silently fork a campaign.
func TestJournalWithoutResumeFails(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig5", "-insts", "2000", "-traffic", "2000", "-journal", dir}
	if _, stderr, code := runSvfexp(t, args...); code != 0 {
		t.Fatalf("first journaled run failed (%d):\n%s", code, stderr)
	}
	_, stderr, code := runSvfexp(t, args...)
	if code != 2 {
		t.Fatalf("re-run without -resume: exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-resume") {
		t.Errorf("error does not tell the user about -resume:\n%s", stderr)
	}
}

// Tentpole end-to-end drill: a campaign killed mid-write (exit 137, as by
// kill -9) resumes from its journal and produces output identical to an
// uninterrupted run.
func TestJournalKillResume(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig5", "-insts", "3000", "-traffic", "3000", "-parallel", "2"}

	// Session 1: the injected kill lands inside the 7th journal append.
	args := append([]string{}, common...)
	args = append(args, "-journal", dir, "-inject", "kill-mid-write=7,seed=3")
	_, stderr, code := runSvfexp(t, args...)
	if code != 137 {
		t.Fatalf("killed run: exit code = %d, want 137; stderr:\n%s", code, stderr)
	}

	// Session 2: resume completes the campaign.
	args = append([]string{}, common...)
	args = append(args, "-journal", dir, "-resume")
	resumed, stderr, code := runSvfexp(t, args...)
	if code != 0 {
		t.Fatalf("resumed run: exit code = %d, stderr:\n%s", code, stderr)
	}
	if stderr != "" {
		t.Errorf("resumed run wrote to stderr:\n%s", stderr)
	}
	if !strings.Contains(resumed, "restored") {
		t.Errorf("resume did not report restored cells:\n%s", resumed)
	}
	if !strings.Contains(resumed, "re-executed this run") {
		t.Errorf("resume did not report the journal status line:\n%s", resumed)
	}

	// Reference: the same suite, uninterrupted and journal-less.
	clean, stderr, code := runSvfexp(t, common...)
	if code != 0 {
		t.Fatalf("clean run: exit code = %d, stderr:\n%s", code, stderr)
	}
	if got, want := normalize(resumed), normalize(clean); got != want {
		t.Errorf("resumed output differs from an uninterrupted run\n--- resumed ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// A completed campaign resumes as pure replay: zero simulations.
func TestJournalResumeServesEverythingFromDisk(t *testing.T) {
	dir := t.TempDir()
	common := []string{"-exp", "fig5", "-insts", "2000", "-traffic", "2000"}
	args := append(append([]string{}, common...), "-journal", dir)
	first, stderr, code := runSvfexp(t, args...)
	if code != 0 {
		t.Fatalf("first run: exit code = %d, stderr:\n%s", code, stderr)
	}
	args = append(append([]string{}, common...), "-journal", dir, "-resume", "-cache-stats")
	second, stderr, code := runSvfexp(t, args...)
	if code != 0 {
		t.Fatalf("resume: exit code = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(second, "0 simulated") {
		t.Errorf("full resume still simulated:\n%s", second)
	}
	if !strings.Contains(second, "0 re-executed this run") {
		t.Errorf("journal status line should report zero re-executions:\n%s", second)
	}
	// Same table either way.
	if !strings.Contains(normalize(second), extractSection(t, normalize(first), "fig5")) {
		t.Errorf("restored table differs\n--- first ---\n%s\n--- resumed ---\n%s", first, second)
	}
}

// extractSection returns the "=== name ..." section of svfexp output.
func extractSection(t *testing.T, out, name string) string {
	t.Helper()
	marker := "=== " + name
	i := strings.Index(out, marker)
	if i < 0 {
		t.Fatalf("output has no %q section:\n%s", name, out)
	}
	rest := out[i:]
	if j := strings.Index(rest[3:], "==="); j >= 0 {
		rest = rest[:j+3]
	}
	return rest
}
