// Command svfexp reproduces the paper's tables and figures.
//
// Usage:
//
//	svfexp -exp all                 # every core experiment
//	svfexp -exp fig5,table3         # a subset
//	svfexp -exp fig7 -insts 1000000 # bigger timing budget
//	svfexp -exp all,scorecard -cache-stats
//
// Experiments: table1 table2 fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9
// table3 table4, plus the opt-in extensions sweep, x86, rse, scorecard,
// famperf and famtraffic (run by name; "all" covers only the paper's own
// tables and figures). famperf/famtraffic evaluate the four stack-stress
// workload families (vm.stack, recurse.deep, coro.switch, alloca.dyn) the
// way Figure 9 and Tables 3/4 evaluate SPEC.
//
// All simulations flow through a shared run cache keyed by workload
// contents and canonical machine options, so identical configurations —
// within one figure, across figures, or between a figure and the scorecard
// — simulate exactly once; -cache-stats prints the hit/miss/dedup summary.
//
// Runs are supervised (see DESIGN.md, "Fault domains and supervision"):
// a simulator panic or deadlock is contained to its cell and reported as a
// typed fault rather than crashing the process. -on-fault picks the policy:
// "continue" (the default) records the fault, renders the cell as "n/a"
// and finishes the suite with exit status 0; "fail" cancels the remaining
// work in that experiment and exits 1. -run-timeout bounds each individual
// simulation; Ctrl-C (SIGINT) or SIGTERM cancels the whole suite promptly
// and exits 130. -inject enables deterministic fault injection (e.g.
// -inject "bench=186.crafty.ref,panic=5000") for supervision testing; its
// spec grammar is documented in svf/internal/faultinject. A fault summary
// — fingerprint, benchmark, cycle — is printed to stderr after a degraded
// suite; a clean suite prints none.
//
// Campaigns survive process death with -journal <dir>: every completed
// cell is appended to a crash-safe on-disk journal (see DESIGN.md §5d),
// and a later invocation with -resume restores those cells from disk and
// re-executes only what is missing, reporting restored vs re-executed
// counts. -retries N bounds how many times a faulted cell is re-executed
// (across resumes, with capped exponential backoff) before it is latched
// in the journal as permanently failed. Ctrl-C/SIGTERM flushes the journal
// before exiting 130, so an interrupted sweep resumes where it stopped.
// Fault-injected runs bypass the journal exactly as they bypass the run
// cache; the journal-level plans (kill-mid-write, journal-torn-tail)
// instead crash the journal itself deterministically, for recovery drills.
//
// Sharded campaigns (-workers N, DESIGN.md §5g) farm every simulation out
// to N supervised worker processes (this binary re-exec'd with -worker)
// over a length-prefixed pipe protocol. Cells are held under time-bounded
// leases with heartbeats (-lease, -heartbeat): a worker that crashes, is
// kill -9'd, or wedges past its lease has the cell reclaimed and
// re-enqueued under the same -retries budget, and a cell that kills
// -poison-k distinct workers is quarantined as a poison cell (latched
// permanently) instead of crash-looping the fleet. Results are
// byte-identical to an in-process run. Combine with -journal/-resume for
// crash tolerance of the coordinator itself; workers never open the
// journal. -cache-stats adds a one-line fleet summary (deaths, lease
// expiries, re-enqueues, quarantines), which /progress mirrors live. The
// faultinject plans worker-kill=N / worker-stall=N kill or wedge the
// worker holding the Nth assignment, for chaos drills.
//
// Telemetry (DESIGN.md §5e) is off unless asked for, and strictly
// observational — results are bit-identical either way. -events FILE
// appends machine-tailable NDJSON lifecycle events (run start/finish,
// cache hit/restore, fault, retry, backoff, journal flush/restore).
// -obs-addr HOST:PORT serves Prometheus-text /metrics, JSON /progress
// (done/total, ETA, fault and latch counts) and /debug/pprof for live
// sweeps; ":0" picks an ephemeral port, reported as "obs: listening on
// ADDR", and -obs-linger keeps the listener up after the suite so
// scripts can scrape a finished campaign. -trace-perfetto FILE runs one
// extra diagnostic simulation (-trace-bench under the Figure 5 infinite-
// SVF configuration, -trace-insts instructions) and writes its per-stage
// instruction timeline as Chrome trace-event JSON for the Perfetto UI.
// When any of these are active, the suite also prints a one-line
// telemetry summary next to -cache-stats — on clean, faulted and
// interrupted exits alike.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"svf/internal/experiments"
	"svf/internal/faultinject"
	"svf/internal/journal"
	"svf/internal/pipeline"
	"svf/internal/shard"
	"svf/internal/sim"
	"svf/internal/synth"
	"svf/internal/telemetry"
)

func main() { os.Exit(run()) }

// run holds the real main body; returning instead of os.Exit lets the
// -cpuprofile / -memprofile defers flush even on a failing suite.
func run() int {
	exp := flag.String("exp", "all", "comma-separated experiments (table1, table2, fig1..fig9, table3, table4, sweep, x86, rse, scorecard, famperf, famtraffic, all)")
	insts := flag.Int("insts", 400_000, "instruction budget per timing run")
	traffic := flag.Int("traffic", 2_000_000, "instruction budget per traffic run")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	svgDir := flag.String("svg", "", "also render each figure as an SVG file into this directory")
	htmlOut := flag.String("html", "", "write a single self-contained HTML report to this file")
	cacheStats := flag.Bool("cache-stats", false, "print the shared run cache's hit/miss/dedup summary after the suite")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
	runTimeout := flag.Duration("run-timeout", 0, "deadline per individual simulation run (0 = none)")
	onFault := flag.String("on-fault", "continue", `simulation-fault policy: "continue" renders failed cells as gaps, "fail" aborts the experiment`)
	inject := flag.String("inject", "", `deterministic fault-injection spec, e.g. "bench=186.crafty.ref,panic=5000" (see svf/internal/faultinject)`)
	journalDir := flag.String("journal", "", "directory for the crash-safe campaign journal; completed cells persist across process death")
	resume := flag.Bool("resume", false, "restore the -journal's completed cells instead of starting a fresh campaign")
	retries := flag.Int("retries", 1, "re-executions allowed per faulted cell (across resumes) before it is latched as permanently failed")
	eventsPath := flag.String("events", "", "write structured NDJSON run-lifecycle events to this file (see DESIGN.md §5e)")
	obsAddr := flag.String("obs-addr", "", `HTTP observability listener ("127.0.0.1:0" for an ephemeral port): /metrics, /progress, /debug/pprof`)
	obsLinger := flag.Duration("obs-linger", 0, "keep the -obs-addr listener serving this long after the suite finishes")
	tracePerfetto := flag.String("trace-perfetto", "", "write a Chrome trace-event / Perfetto JSON stage timeline of one diagnostic run to this file")
	traceBench := flag.String("trace-bench", "186.crafty.ref", "benchmark for the -trace-perfetto diagnostic run")
	traceInsts := flag.Int("trace-insts", 20_000, "instruction budget for the -trace-perfetto diagnostic run")
	traceCacheMB := flag.Int64("trace-cache-mb", sim.DefaultTraceCacheBytes>>20, "memory budget (MiB) for the recorded-trace cache; 0 disables trace recording")
	workers := flag.Int("workers", 0, "shard the campaign across this many supervised worker processes (0 = simulate in-process)")
	workerMode := flag.Bool("worker", false, "run as a shard worker speaking frames over stdin/stdout (internal; spawned by -workers)")
	leaseTTL := flag.Duration("lease", 30*time.Second, "sharded mode: how long a worker's cell may go without a heartbeat before the lease expires and the cell is re-enqueued")
	heartbeat := flag.Duration("heartbeat", 0, "sharded mode: worker heartbeat period (0 = lease/4)")
	poisonK := flag.Int("poison-k", 3, "sharded mode: quarantine a cell as poison (latch it permanently) once it has killed this many distinct workers")
	flag.Parse()
	sim.SetTraceCacheBudget(*traceCacheMB << 20)

	policy, err := experiments.ParseFaultPolicy(*onFault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfexp: -on-fault: %v\n", err)
		return 2
	}
	plan, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfexp: -inject: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *workerMode {
		// Worker processes are stateless executors: stdin/stdout carry
		// protocol frames (nothing else may print to stdout), and they
		// must never open the coordinator's journal — the journal's
		// advisory flock would refuse anyway, but refusing the flag makes
		// the mistake a clear usage error instead of a lock fight.
		if *journalDir != "" {
			fmt.Fprintln(os.Stderr, "svfexp: -worker: workers must not open the campaign journal (-journal belongs to the coordinator)")
			return 2
		}
		w := &shard.Worker{In: os.Stdin, Out: os.Stdout}
		if err := w.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: worker: %v\n", err)
			return 1
		}
		return 0
	}

	// Telemetry sinks. The event log and the metrics registry/progress
	// tracker are independent: -events alone still aggregates counters for
	// the end-of-run summary, -obs-addr alone still serves /metrics with no
	// log on disk. Everything here is nil when the flags are absent, and
	// every downstream layer treats nil as "off".
	var (
		events    *telemetry.EventLog
		registry  *telemetry.Registry
		progress  *telemetry.Progress
		suiteTime = time.Now()
	)
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -events: %v\n", err)
			return 2
		}
		events = telemetry.NewEventLog(f)
		defer events.Close()
	}
	telemetryOn := *eventsPath != "" || *obsAddr != ""
	var tracer *telemetry.Tracer
	var campaignSpan *telemetry.ActiveSpan
	if telemetryOn {
		registry = telemetry.NewRegistry()
		progress = telemetry.NewProgress()
		// The campaign is one trace: a root span whose context rides the
		// suite ctx into every cache call, so sharded cells record
		// lease/worker spans and the event log carries span_end records.
		tracer = telemetry.NewTracer()
		tracer.SetEvents(events)
		// Unlike job traces (minted from the content fingerprint so journal
		// replay continues the same trace), a campaign trace has nothing to
		// resume — mint it per run, mixing in PID and start time, so
		// re-running the identical command line does not conflate two runs'
		// span_end events under one trace ID in an appended events log.
		campaignTrace := telemetry.MintTraceID(fmt.Sprintf(
			"svf-campaign|%d|%d|%s", os.Getpid(), suiteTime.UnixNano(), strings.Join(os.Args[1:], " ")))
		campaignSpan = tracer.StartSpan(telemetry.SpanContext{Trace: campaignTrace}, "campaign")
		ctx = telemetry.ContextWithSpan(ctx, campaignSpan.Context())
	}
	if *obsAddr != "" {
		srv := &telemetry.Server{Registry: registry, Progress: progress}
		addr, err := srv.Listen(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -obs-addr: %v\n", err)
			return 2
		}
		defer srv.Close()
		// Scripts (and the CI smoke test) discover the ephemeral port from
		// this line.
		fmt.Printf("obs: listening on %s\n", addr)
	}
	events.Emit(telemetry.Event{Type: "campaign_start", Detail: strings.Join(os.Args[1:], " ")})

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svfexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "svfexp: -memprofile: %v\n", err)
			}
		}()
	}

	var report experiments.ReportBuilder

	// writeSVG records the chart in the report and, with -svg, renders it
	// to disk. It returns rather than exits on failure so one bad write
	// cannot abort a half-finished suite.
	writeSVG := func(c experiments.ChartSVG) error {
		report.AddChart(c)
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*svgDir, c.Name)
		if err := os.WriteFile(path, []byte(c.SVG), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	cache := sim.SharedCache()
	faults := experiments.NewFaultLog()
	var jr *journal.Journal
	var restored sim.RestoreStats
	if *journalDir != "" {
		jopts := journal.Options{
			Inject: plan,
			// An injected journal crash must look like process death:
			// exit with SIGKILL's conventional status, skipping every
			// cleanup path, so recovery drills rehearse the real thing.
			OnCrash: func() { os.Exit(137) },
		}
		if events != nil {
			jopts.OnSync = func(appends, syncBatches uint64) {
				events.Emit(telemetry.Event{Type: "journal_flush", Records: appends, SyncBatches: syncBatches})
			}
		}
		j, rep, err := journal.Open(*journalDir, jopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -journal: %v\n", err)
			return 2
		}
		defer j.Close()
		if !*resume && len(rep.Records) > 0 {
			fmt.Fprintf(os.Stderr, "svfexp: -journal: %s already holds %d record(s); pass -resume to continue the campaign, or remove the directory to start over\n",
				*journalDir, len(rep.Records))
			return 2
		}
		jr = j
		cache, restored = sim.NewRunCacheWithJournal(j, rep)
		if *resume {
			fmt.Printf("journal: %s\n", restored)
		}
		// Latched cells were reported in their own session; replaying
		// them into the fault log keeps this run's summary complete.
		for _, err := range cache.RestoredFaults() {
			faults.AddReplayed(err)
		}
	}
	var pool *shard.Pool
	if *workers > 0 {
		if *journalDir == "" {
			// A sharded campaign without a journal still needs cell state
			// that outlives individual requests: the in-memory store keeps
			// retry attempts and poison-cell quarantine latches for the
			// process lifetime (a plain cache would forget them).
			cache = sim.NewRunCacheWithStore(sim.NewMemStore())
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -workers: %v\n", err)
			return 1
		}
		pool, err = shard.NewPool(shard.Config{
			Workers:   *workers,
			LeaseTTL:  *leaseTTL,
			Heartbeat: *heartbeat,
			PoisonK:   *poisonK,
			Plan:      plan,
			Spawn:     shard.CommandSpawner(exe, "-worker", fmt.Sprintf("-trace-cache-mb=%d", *traceCacheMB)),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "svfexp: "+format+"\n", args...)
			},
			Registry: registry,
			Events:   events,
			Tracer:   tracer,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -workers: %v\n", err)
			return 1
		}
		defer pool.Close()
		cache.SetExecutor(pool)
		progress.SetShard(func() telemetry.ShardStatus { return pool.Status().Telemetry() })
		if *parallel == 0 {
			// Saturate the fleet: the dispatcher goroutines only wait on
			// workers, so one per worker is the natural default.
			*parallel = *workers
		}
	}
	cache.SetRetries(*retries)
	if telemetryOn {
		// Attached after the journal restore so the observer's opening
		// journal_restore event reflects what actually came back from disk.
		cache.SetObserver(&sim.Observer{Events: events, Registry: registry, Progress: progress, Tracer: tracer})
	}
	cfg := experiments.Config{
		MaxInsts: *insts, TrafficInsts: *traffic, Parallel: *parallel, Cache: cache,
		Ctx: ctx, RunTimeout: *runTimeout, OnFault: policy, Faults: faults, Inject: plan,
		Progress: progress,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type expFn struct {
		name  string
		title string
		run   func() (fmt.Stringer, error)
	}
	fns := []expFn{
		{"table1", "Table 1: SPEC CPU2000 integer benchmark inventory", func() (fmt.Stringer, error) {
			return experiments.Table1(), nil
		}},
		{"table2", "Table 2: Processor models", func() (fmt.Stringer, error) {
			return experiments.Table2(), nil
		}},
		{"fig1", "Figure 1: Run-time memory access distribution", func() (fmt.Stringer, error) {
			r, err := experiments.Fig1(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig2", "Figure 2: Stack depth variation (summary; series in library API)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig2(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig3", "Figure 3: Offset locality within a function", func() (fmt.Stringer, error) {
			r, err := experiments.Fig3(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig5", "Figure 5: Speedup of morphing all stack accesses (infinite SVF), %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig5(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig6", "Figure 6: Progressive performance analysis (16-wide), %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig6(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig7", "Figure 7: SVF vs stack cache vs baseline ports, % over (2+0)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig7(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig8", "Figure 8: Breakdown of SVF reference types", func() (fmt.Stringer, error) {
			r, err := experiments.Fig8(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig9", "Figure 9: SVF speedups over baseline, %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig9(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"table3", "Table 3: Memory traffic, stack cache vs SVF (quadwords)", func() (fmt.Stringer, error) {
			r, err := experiments.Table3(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"table4", "Table 4: Memory traffic on context switches (bytes/switch)", func() (fmt.Stringer, error) {
			r, err := experiments.Table4(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"x86", "x86 extension (§7): partial-word flavour vs Alpha flavour under the SVF", func() (fmt.Stringer, error) {
			r, err := experiments.X86(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"scorecard", "Reproduction scorecard: the paper's headline claims, graded", func() (fmt.Stringer, error) {
			r, err := experiments.RunScorecard(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"rse", "Structure comparison: SVF vs stack cache vs register stack engine (§6)", func() (fmt.Stringer, error) {
			r, err := experiments.RSE(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"sweep", "Design-space sweep: SVF capacity x ports (mean over benchmarks)", func() (fmt.Stringer, error) {
			r, err := experiments.Sweep(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"famperf", "Stack-stress families: speedup over (2+0) baseline, %", func() (fmt.Stringer, error) {
			r, err := experiments.FamilyPerf(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"famtraffic", "Stack-stress families: memory traffic (quadwords; bytes/ctx-switch)", func() (fmt.Stringer, error) {
			r, err := experiments.FamilyTraffic(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
	}

	ran, failed := 0, 0
	for _, f := range fns {
		if ctx.Err() != nil {
			break // interrupted: skip straight to the summaries
		}
		if (f.name == "sweep" || f.name == "x86" || f.name == "rse" || f.name == "scorecard" ||
			f.name == "famperf" || f.name == "famtraffic") && !want[f.name] {
			continue // opt-in: costly extension experiments
		}
		if !all && !want[f.name] {
			continue
		}
		start := time.Now()
		events.Emit(telemetry.Event{Type: "experiment_start", Experiment: f.name})
		out, err := f.run()
		fin := telemetry.Event{Type: "experiment_finish", Experiment: f.name,
			DurMS: float64(time.Since(start)) / float64(time.Millisecond)}
		if err != nil {
			// Keep going: a failed experiment (or SVG write) must not
			// discard the results of the rest of the suite.
			fmt.Fprintf(os.Stderr, "svfexp: %s: %v\n", f.name, err)
			failed++
			fin.Err = err.Error()
		}
		events.Emit(fin)
		if out != nil {
			fmt.Printf("=== %s (%s, %.1fs) ===\n%s\n", f.name, f.title, time.Since(start).Seconds(), out)
			report.AddSection(f.title, out.String())
			ran++
		}
	}
	if ran == 0 && failed == 0 && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "svfexp: no experiment matched %q\n", *exp)
		return 2
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(report.Render()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote %s\n", *htmlOut)
		}
	}
	if *tracePerfetto != "" && ctx.Err() == nil {
		if err := writePerfettoTrace(ctx, *tracePerfetto, *traceBench, *traceInsts, registry, events); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -trace-perfetto: %v\n", err)
			failed++
		}
	}

	// The post-suite accounting prints on every exit path from here on —
	// clean, degraded and interrupted alike — so a Ctrl-C cannot lose the
	// counters the journal worked to keep exact.
	if *cacheStats {
		fmt.Println(cache.Stats())
	}
	if pool != nil && *cacheStats {
		fmt.Println(pool.Status())
	}
	if telemetryOn {
		fmt.Println(telemetrySummary(registry, progress))
	}
	if jr != nil {
		st := cache.Stats()
		js := jr.Stats()
		fmt.Printf("journal: %d cell(s) restored from disk, %d re-executed this run; %d record(s) appended (%d fsync batches)\n",
			restored.Restored(), st.Misses, js.Appends, js.SyncBatches)
	}
	if s := faults.Summary(); s != "" {
		fmt.Fprint(os.Stderr, "svfexp: "+s)
	}
	if ctx.Err() != nil {
		events.Emit(telemetry.Event{Type: "interrupt", Detail: "suite cancelled by signal"})
	}
	campaignSpan.End()
	events.Emit(telemetry.Event{Type: "campaign_finish",
		DurMS:  float64(time.Since(suiteTime)) / float64(time.Millisecond),
		Detail: fmt.Sprintf("%d experiment(s) ran, %d failed", ran, failed)})
	if err := events.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "svfexp: -events: %v\n", err)
	}
	if ctx.Err() != nil {
		if jr != nil {
			jr.Close() // flush now: the journal must be durable before we report the interrupt
			fmt.Fprintf(os.Stderr, "svfexp: interrupted (journal flushed; continue with -journal %s -resume)\n", *journalDir)
		} else {
			fmt.Fprintln(os.Stderr, "svfexp: interrupted")
		}
		return 130
	}
	if *obsAddr != "" && *obsLinger > 0 {
		// Hold the listener up so scripts can scrape a finished campaign's
		// /metrics and /progress; Ctrl-C ends the linger early without
		// turning a completed suite into exit 130.
		fmt.Printf("obs: serving for another %s (Ctrl-C to stop)\n", *obsLinger)
		select {
		case <-time.After(*obsLinger):
		case <-ctx.Done():
		}
	}
	if failed > 0 {
		return 1
	}
	// Contained faults under -on-fault=continue degrade cells to gaps but do
	// not fail the suite; they were reported above.
	return 0
}

// telemetrySummary renders the one-line end-of-run digest of the metrics
// registry and progress tracker (printed whenever telemetry is enabled).
func telemetrySummary(reg *telemetry.Registry, prog *telemetry.Progress) string {
	v := func(name string) uint64 { return reg.Counter(name).Load() }
	snap := prog.Snapshot()
	return fmt.Sprintf("telemetry: %d/%d cell(s) done in %.1fs; %d run(s) simulated (%d cycles, %d insts), %d cache hit(s) (%d restored), %d fault(s), %d retried, %d latched",
		snap.Done, snap.Total, snap.ElapsedSec,
		v("svf_sim_runs_total"), v("svf_sim_cycles_total"), v("svf_sim_insts_total"),
		v("svf_cache_hits_total"), v("svf_cache_restored_hits_total"),
		v("svf_sim_run_faults_total"), v("svf_sim_retries_total"), snap.Latched)
}

// writePerfettoTrace runs one extra diagnostic simulation — the named
// benchmark under the Figure 5 configuration (16-wide, infinite SVF,
// perfect front end) — with the per-stage trace enabled, and writes the
// timeline as Chrome trace-event JSON the Perfetto UI loads directly.
func writePerfettoTrace(ctx context.Context, path, bench string, insts int, reg *telemetry.Registry, events *telemetry.EventLog) error {
	prof := synth.ByName(bench)
	if prof == nil {
		return fmt.Errorf("unknown benchmark %q", bench)
	}
	tr := telemetry.NewPipelineTrace()
	probe := telemetry.NewProbe(reg)
	probe.Trace = tr
	res, err := sim.RunContext(ctx, prof, sim.Options{
		Machine: pipeline.SixteenWide(), Policy: pipeline.PolicySVF, SVFInfinite: true,
		MaxInsts: insts, Probe: probe,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := tr.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	events.Emit(telemetry.Event{Type: "trace_written", Bench: res.Bench, Detail: path,
		Cycles: res.Cycles(), Committed: res.Pipe.Committed, Records: uint64(tr.Events())})
	fmt.Printf("wrote %s (%d trace events, %d dropped)\n", path, tr.Events(), tr.Dropped())
	return nil
}
