// Command svfexp reproduces the paper's tables and figures.
//
// Usage:
//
//	svfexp -exp all                 # every core experiment
//	svfexp -exp fig5,table3         # a subset
//	svfexp -exp fig7 -insts 1000000 # bigger timing budget
//	svfexp -exp all,scorecard -cache-stats
//
// Experiments: table1 table2 fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9
// table3 table4, plus the opt-in extensions sweep, x86, rse and scorecard
// (run by name; "all" covers only the paper's own tables and figures).
//
// All simulations flow through a shared run cache keyed by workload
// contents and canonical machine options, so identical configurations —
// within one figure, across figures, or between a figure and the scorecard
// — simulate exactly once; -cache-stats prints the hit/miss/dedup summary.
//
// Runs are supervised (see DESIGN.md, "Fault domains and supervision"):
// a simulator panic or deadlock is contained to its cell and reported as a
// typed fault rather than crashing the process. -on-fault picks the policy:
// "continue" (the default) records the fault, renders the cell as "n/a"
// and finishes the suite with exit status 0; "fail" cancels the remaining
// work in that experiment and exits 1. -run-timeout bounds each individual
// simulation; Ctrl-C (SIGINT) or SIGTERM cancels the whole suite promptly
// and exits 130. -inject enables deterministic fault injection (e.g.
// -inject "bench=186.crafty.ref,panic=5000") for supervision testing; its
// spec grammar is documented in svf/internal/faultinject. A fault summary
// — fingerprint, benchmark, cycle — is printed to stderr after a degraded
// suite; a clean suite prints none.
//
// Campaigns survive process death with -journal <dir>: every completed
// cell is appended to a crash-safe on-disk journal (see DESIGN.md §5d),
// and a later invocation with -resume restores those cells from disk and
// re-executes only what is missing, reporting restored vs re-executed
// counts. -retries N bounds how many times a faulted cell is re-executed
// (across resumes, with capped exponential backoff) before it is latched
// in the journal as permanently failed. Ctrl-C/SIGTERM flushes the journal
// before exiting 130, so an interrupted sweep resumes where it stopped.
// Fault-injected runs bypass the journal exactly as they bypass the run
// cache; the journal-level plans (kill-mid-write, journal-torn-tail)
// instead crash the journal itself deterministically, for recovery drills.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"svf/internal/experiments"
	"svf/internal/faultinject"
	"svf/internal/journal"
	"svf/internal/sim"
)

func main() { os.Exit(run()) }

// run holds the real main body; returning instead of os.Exit lets the
// -cpuprofile / -memprofile defers flush even on a failing suite.
func run() int {
	exp := flag.String("exp", "all", "comma-separated experiments (table1, table2, fig1..fig9, table3, table4, sweep, x86, rse, scorecard, all)")
	insts := flag.Int("insts", 400_000, "instruction budget per timing run")
	traffic := flag.Int("traffic", 2_000_000, "instruction budget per traffic run")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
	svgDir := flag.String("svg", "", "also render each figure as an SVG file into this directory")
	htmlOut := flag.String("html", "", "write a single self-contained HTML report to this file")
	cacheStats := flag.Bool("cache-stats", false, "print the shared run cache's hit/miss/dedup summary after the suite")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole suite to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the suite) to this file")
	runTimeout := flag.Duration("run-timeout", 0, "deadline per individual simulation run (0 = none)")
	onFault := flag.String("on-fault", "continue", `simulation-fault policy: "continue" renders failed cells as gaps, "fail" aborts the experiment`)
	inject := flag.String("inject", "", `deterministic fault-injection spec, e.g. "bench=186.crafty.ref,panic=5000" (see svf/internal/faultinject)`)
	journalDir := flag.String("journal", "", "directory for the crash-safe campaign journal; completed cells persist across process death")
	resume := flag.Bool("resume", false, "restore the -journal's completed cells instead of starting a fresh campaign")
	retries := flag.Int("retries", 1, "re-executions allowed per faulted cell (across resumes) before it is latched as permanently failed")
	flag.Parse()

	policy, err := experiments.ParseFaultPolicy(*onFault)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfexp: -on-fault: %v\n", err)
		return 2
	}
	plan, err := faultinject.Parse(*inject)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfexp: -inject: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svfexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "svfexp: -memprofile: %v\n", err)
			}
		}()
	}

	var report experiments.ReportBuilder

	// writeSVG records the chart in the report and, with -svg, renders it
	// to disk. It returns rather than exits on failure so one bad write
	// cannot abort a half-finished suite.
	writeSVG := func(c experiments.ChartSVG) error {
		report.AddChart(c)
		if *svgDir == "" {
			return nil
		}
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*svgDir, c.Name)
		if err := os.WriteFile(path, []byte(c.SVG), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	cache := sim.SharedCache()
	faults := experiments.NewFaultLog()
	var jr *journal.Journal
	var restored sim.RestoreStats
	if *journalDir != "" {
		j, rep, err := journal.Open(*journalDir, journal.Options{
			Inject: plan,
			// An injected journal crash must look like process death:
			// exit with SIGKILL's conventional status, skipping every
			// cleanup path, so recovery drills rehearse the real thing.
			OnCrash: func() { os.Exit(137) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: -journal: %v\n", err)
			return 2
		}
		defer j.Close()
		if !*resume && len(rep.Records) > 0 {
			fmt.Fprintf(os.Stderr, "svfexp: -journal: %s already holds %d record(s); pass -resume to continue the campaign, or remove the directory to start over\n",
				*journalDir, len(rep.Records))
			return 2
		}
		jr = j
		cache, restored = sim.NewRunCacheWithJournal(j, rep)
		if *resume {
			fmt.Printf("journal: %s\n", restored)
		}
		// Latched cells were reported in their own session; replaying
		// them into the fault log keeps this run's summary complete.
		for _, err := range cache.RestoredFaults() {
			faults.AddReplayed(err)
		}
	}
	cache.SetRetries(*retries)
	cfg := experiments.Config{
		MaxInsts: *insts, TrafficInsts: *traffic, Parallel: *parallel, Cache: cache,
		Ctx: ctx, RunTimeout: *runTimeout, OnFault: policy, Faults: faults, Inject: plan,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type expFn struct {
		name  string
		title string
		run   func() (fmt.Stringer, error)
	}
	fns := []expFn{
		{"table1", "Table 1: SPEC CPU2000 integer benchmark inventory", func() (fmt.Stringer, error) {
			return experiments.Table1(), nil
		}},
		{"table2", "Table 2: Processor models", func() (fmt.Stringer, error) {
			return experiments.Table2(), nil
		}},
		{"fig1", "Figure 1: Run-time memory access distribution", func() (fmt.Stringer, error) {
			r, err := experiments.Fig1(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig2", "Figure 2: Stack depth variation (summary; series in library API)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig2(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig3", "Figure 3: Offset locality within a function", func() (fmt.Stringer, error) {
			r, err := experiments.Fig3(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig5", "Figure 5: Speedup of morphing all stack accesses (infinite SVF), %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig5(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig6", "Figure 6: Progressive performance analysis (16-wide), %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig6(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig7", "Figure 7: SVF vs stack cache vs baseline ports, % over (2+0)", func() (fmt.Stringer, error) {
			r, err := experiments.Fig7(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig8", "Figure 8: Breakdown of SVF reference types", func() (fmt.Stringer, error) {
			r, err := experiments.Fig8(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"fig9", "Figure 9: SVF speedups over baseline, %", func() (fmt.Stringer, error) {
			r, err := experiments.Fig9(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), writeSVG(r.Chart())
		}},
		{"table3", "Table 3: Memory traffic, stack cache vs SVF (quadwords)", func() (fmt.Stringer, error) {
			r, err := experiments.Table3(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"table4", "Table 4: Memory traffic on context switches (bytes/switch)", func() (fmt.Stringer, error) {
			r, err := experiments.Table4(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"x86", "x86 extension (§7): partial-word flavour vs Alpha flavour under the SVF", func() (fmt.Stringer, error) {
			r, err := experiments.X86(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"scorecard", "Reproduction scorecard: the paper's headline claims, graded", func() (fmt.Stringer, error) {
			r, err := experiments.RunScorecard(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"rse", "Structure comparison: SVF vs stack cache vs register stack engine (§6)", func() (fmt.Stringer, error) {
			r, err := experiments.RSE(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"sweep", "Design-space sweep: SVF capacity x ports (mean over benchmarks)", func() (fmt.Stringer, error) {
			r, err := experiments.Sweep(cfg)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	ran, failed := 0, 0
	for _, f := range fns {
		if (f.name == "sweep" || f.name == "x86" || f.name == "rse" || f.name == "scorecard") && !want[f.name] {
			continue // opt-in: costly extension experiments
		}
		if !all && !want[f.name] {
			continue
		}
		start := time.Now()
		out, err := f.run()
		if err != nil {
			// Keep going: a failed experiment (or SVG write) must not
			// discard the results of the rest of the suite.
			fmt.Fprintf(os.Stderr, "svfexp: %s: %v\n", f.name, err)
			failed++
		}
		if out != nil {
			fmt.Printf("=== %s (%s, %.1fs) ===\n%s\n", f.name, f.title, time.Since(start).Seconds(), out)
			report.AddSection(f.title, out.String())
			ran++
		}
	}
	if ran == 0 && failed == 0 {
		fmt.Fprintf(os.Stderr, "svfexp: no experiment matched %q\n", *exp)
		return 2
	}
	if *htmlOut != "" {
		if err := os.WriteFile(*htmlOut, []byte(report.Render()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "svfexp: %v\n", err)
			failed++
		} else {
			fmt.Printf("wrote %s\n", *htmlOut)
		}
	}
	if *cacheStats {
		fmt.Println(cache.Stats())
	}
	if jr != nil {
		st := cache.Stats()
		js := jr.Stats()
		fmt.Printf("journal: %d cell(s) restored from disk, %d re-executed this run; %d record(s) appended (%d fsync batches)\n",
			restored.Restored(), st.Misses, js.Appends, js.SyncBatches)
	}
	if s := faults.Summary(); s != "" {
		fmt.Fprint(os.Stderr, "svfexp: "+s)
	}
	if ctx.Err() != nil {
		if jr != nil {
			jr.Close() // flush now: the journal must be durable before we report the interrupt
			fmt.Fprintf(os.Stderr, "svfexp: interrupted (journal flushed; continue with -journal %s -resume)\n", *journalDir)
		} else {
			fmt.Fprintln(os.Stderr, "svfexp: interrupted")
		}
		return 130
	}
	if failed > 0 {
		return 1
	}
	// Contained faults under -on-fault=continue degrade cells to gaps but do
	// not fail the suite; they were reported above.
	return 0
}
