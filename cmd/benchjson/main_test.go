package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: svf/internal/pipeline
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPipelineRaw-8   	      30	  21681424 ns/op	   9224507 insts/sec
BenchmarkPipelineRawBaseline-8   	      30	  28049531 ns/op	   7130251 insts/sec
PASS
ok  	svf/internal/pipeline	2.1s
`

func TestParseBenchOutput(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleBench), baselines{"BenchmarkPipelineRaw": 2550154})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "svf/internal/pipeline" {
		t.Errorf("context lines not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkPipelineRaw" || b.Iterations != 30 || b.NsPerOp != 21681424 {
		t.Errorf("first benchmark misparsed: %+v", b)
	}
	if got := b.Metrics["insts/sec"]; got != 9224507 {
		t.Errorf("insts/sec = %v, want 9224507", got)
	}
	if b.SpeedupVsBaseline < 3.6 || b.SpeedupVsBaseline > 3.7 {
		t.Errorf("speedup_vs_baseline = %v, want ~3.62", b.SpeedupVsBaseline)
	}
	if doc.Benchmarks[1].SpeedupVsBaseline != 0 {
		t.Errorf("benchmark without a -baseline flag gained a speedup: %+v", doc.Benchmarks[1])
	}
}

func TestLoadBaselinesFromCommittedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	committed := benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkPipelineRaw", Metrics: map[string]float64{"insts/sec": 9341331}},
		{Name: "BenchmarkCampaignCell", Metrics: map[string]float64{"insts/sec": 6170000}},
		{Name: "BenchmarkNoMetric", Metrics: map[string]float64{}},
	}}
	raw, err := json.Marshal(committed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// An explicit -baseline flag must win over the file.
	base := baselines{"BenchmarkCampaignCell": 123}
	if err := loadBaselines(path, base); err != nil {
		t.Fatal(err)
	}
	if base["BenchmarkPipelineRaw"] != 9341331 {
		t.Errorf("baseline from file = %v, want 9341331", base["BenchmarkPipelineRaw"])
	}
	if base["BenchmarkCampaignCell"] != 123 {
		t.Errorf("explicit baseline clobbered: %v", base["BenchmarkCampaignCell"])
	}
	if _, ok := base["BenchmarkNoMetric"]; ok {
		t.Error("benchmark without insts/sec gained a baseline")
	}

	doc, err := parse(strings.NewReader(sampleBench), base)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Benchmarks[0]
	if b.BaselineInstsPerSec != 9341331 {
		t.Errorf("parse did not use the file baseline: %+v", b)
	}

	// Missing file: silently no baselines (fresh checkout).
	if err := loadBaselines(filepath.Join(t.TempDir(), "absent.json"), baselines{}); err != nil {
		t.Errorf("missing baseline file should be skipped, got %v", err)
	}
	// Malformed file: loud error.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadBaselines(bad, baselines{}); err == nil {
		t.Error("malformed baseline file did not error")
	}
}

func TestAppendHistoryAccumulates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_HISTORY.json")
	doc, err := parse(strings.NewReader(sampleBench), nil)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := appendHistory(path, doc, t0); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, doc, t0.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []historyEntry
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatalf("history is not a JSON array: %v\n%s", err, raw)
	}
	if len(hist) != 2 {
		t.Fatalf("got %d entries, want 2", len(hist))
	}
	if hist[0].TS != "2026-08-05T12:00:00Z" || hist[1].TS != "2026-08-06T12:00:00Z" {
		t.Errorf("timestamps wrong: %q, %q", hist[0].TS, hist[1].TS)
	}
	// The benchFile payload must flatten into the entry, not nest.
	if len(hist[1].Benchmarks) != 2 || hist[1].Benchmarks[0].Name != "BenchmarkPipelineRaw" {
		t.Errorf("embedded benchmarks misencoded: %+v", hist[1])
	}
}

func TestAppendHistoryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_HISTORY.json")
	if err := os.WriteFile(path, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := &benchFile{Benchmarks: []benchResult{{Name: "B"}}}
	if err := appendHistory(path, doc, time.Now()); err == nil {
		t.Fatal("appending over a non-array file did not error")
	}
	// The garbage file must survive untouched.
	raw, _ := os.ReadFile(path)
	if string(raw) != `{"not":"an array"}` {
		t.Errorf("history file was clobbered: %s", raw)
	}
}
