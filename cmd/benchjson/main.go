// Command benchjson converts `go test -bench` text output into a
// machine-readable BENCH.json so the performance trajectory of the
// simulator is tracked as data, not prose.
//
// Usage:
//
//	go test ./internal/pipeline -run '^$' -bench . | benchjson -o BENCH.json \
//	    -history BENCH_HISTORY.json
//
// By default the baseline insts/sec for each benchmark is read from the
// committed BENCH.json itself (-baseline-from), so every new measurement
// reports its speedup against the last recorded one without hand-copied
// numbers. Explicit -baseline name=value flags override individual
// benchmarks (e.g. for a reference figure measured outside this file).
//
// -history FILE additionally appends the run, stamped with the current UTC
// time, to a JSON array of past runs: BENCH.json stays the latest
// measurement, BENCH_HISTORY.json (the conventional name) accumulates the
// trajectory so speedups and regressions are trackable across commits. A
// missing or empty history file starts a new array.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	// BaselineInstsPerSec and SpeedupVsBaseline are filled when a
	// -baseline flag names this benchmark.
	BaselineInstsPerSec float64 `json:"baseline_insts_per_sec,omitempty"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchFile is the BENCH.json document.
type benchFile struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// historyEntry is one element of the BENCH_HISTORY.json array: a benchFile
// stamped with when it was measured.
type historyEntry struct {
	TS string `json:"ts"`
	benchFile
}

// baselines collects repeated -baseline name=insts/sec flags.
type baselines map[string]float64

func (b baselines) String() string { return fmt.Sprint(map[string]float64(b)) }

func (b baselines) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=insts/sec, got %q", s)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	b[name] = f
	return nil
}

func main() {
	out := flag.String("o", "BENCH.json", "output file (- for stdout)")
	history := flag.String("history", "", "also append this run, timestamped, to a JSON-array history file (e.g. BENCH_HISTORY.json)")
	baseFrom := flag.String("baseline-from", "BENCH.json", "read per-benchmark baseline insts/sec from this existing BENCH.json (\"\" to disable; a missing file is skipped)")
	base := baselines{}
	flag.Var(base, "baseline", "reference insts/sec as name=value (repeatable); overrides -baseline-from per benchmark")
	flag.Parse()

	// The committed file is read before anything is written, so -o and
	// -baseline-from may (and by default do) name the same path.
	if *baseFrom != "" {
		if err := loadBaselines(*baseFrom, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -baseline-from: %v\n", err)
			os.Exit(1)
		}
	}

	doc, err := parse(os.Stdin, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *history != "" {
		if err := appendHistory(*history, doc, time.Now().UTC()); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -history: %v\n", err)
			os.Exit(1)
		}
	}
}

// loadBaselines reads an existing BENCH.json and records each benchmark's
// measured insts/sec as the baseline for the run being parsed, without
// clobbering baselines given explicitly on the command line. A missing
// file is not an error (first measurement on a fresh checkout); a
// malformed one is.
func loadBaselines(path string, base baselines) error {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, b := range doc.Benchmarks {
		if _, explicit := base[b.Name]; explicit {
			continue
		}
		if ips, ok := b.Metrics["insts/sec"]; ok && ips > 0 {
			base[b.Name] = ips
		}
	}
	return nil
}

// appendHistory adds doc, stamped with now, to the JSON array in path. A
// missing or empty file starts a new array; a file holding anything other
// than a history array is an error, not silently overwritten.
func appendHistory(path string, doc *benchFile, now time.Time) error {
	var hist []historyEntry
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return err
	case len(strings.TrimSpace(string(raw))) > 0:
		if err := json.Unmarshal(raw, &hist); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	hist = append(hist, historyEntry{TS: now.Format(time.RFC3339), benchFile: *doc})
	buf, err := json.MarshalIndent(hist, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// parse reads `go test -bench` output: context lines (goos/goarch/pkg/cpu)
// and benchmark lines of the form
//
//	BenchmarkName-8   30   21681424 ns/op   9224507 insts/sec
func parse(r io.Reader, base baselines) (*benchFile, error) {
	doc := &benchFile{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "BenchmarkFoo" header with no results
		}
		b := benchResult{
			// Strip the -GOMAXPROCS suffix so names are stable across
			// machines.
			Name:       strings.Split(fields[0], "-")[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
			} else {
				b.Metrics[fields[i+1]] = v
			}
		}
		if ref, ok := base[b.Name]; ok && ref > 0 {
			if ips, ok := b.Metrics["insts/sec"]; ok {
				b.BaselineInstsPerSec = ref
				b.SpeedupVsBaseline = ips / ref
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}
