// Command svfsim runs one benchmark on one machine configuration and dumps
// every statistic the simulator collects — the tool to reach for when
// exploring a single configuration rather than regenerating a paper figure.
//
// Usage:
//
//	svfsim -bench 186.crafty -policy svf -dl1ports 2 -stackports 2
//	svfsim -bench 252.eon -policy stackcache -size 8192
//	svfsim -bench 176.gcc -width 8 -pred gshare -insts 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"svf/internal/pipeline"
	"svf/internal/sim"
	"svf/internal/synth"
)

func main() {
	bench := flag.String("bench", "186.crafty", "benchmark name or id (see Table 1)")
	width := flag.Int("width", 16, "machine width: 4, 8 or 16 (Table 2)")
	policy := flag.String("policy", "baseline", "stack policy: baseline, svf, stackcache, rse")
	size := flag.Int("size", 8192, "SVF/stack cache capacity in bytes")
	dl1Ports := flag.Int("dl1ports", 2, "first-level data cache ports")
	stackPorts := flag.Int("stackports", 2, "SVF/stack cache ports (0 = unlimited)")
	pred := flag.String("pred", "perfect", "branch predictor: perfect, gshare, bimodal")
	insts := flag.Int("insts", 1_000_000, "instructions to simulate")
	infinite := flag.Bool("infinite", false, "use an infinite SVF (Figure 5 limit study)")
	ctx := flag.Uint64("ctxperiod", 0, "context switch period in instructions (0 = off)")
	noSquash := flag.Bool("nosquash", false, "assume the collision-free code generator (no squashes)")
	flag.Parse()

	prof := synth.ByName(*bench)
	if prof == nil {
		fmt.Fprintf(os.Stderr, "svfsim: unknown benchmark %q; known:\n", *bench)
		for _, p := range synth.BenchmarkInputs() {
			fmt.Fprintf(os.Stderr, "  %s\n", p.ID())
		}
		os.Exit(2)
	}

	var mc pipeline.MachineConfig
	switch *width {
	case 4:
		mc = pipeline.FourWide()
	case 8:
		mc = pipeline.EightWide()
	case 16:
		mc = pipeline.SixteenWide()
	default:
		fmt.Fprintf(os.Stderr, "svfsim: width must be 4, 8 or 16\n")
		os.Exit(2)
	}
	mc.NoSquash = *noSquash

	opt := sim.Options{
		Machine:         mc,
		DL1Ports:        *dl1Ports,
		StackSizeBytes:  *size,
		StackPorts:      *stackPorts,
		SVFInfinite:     *infinite,
		Predictor:       sim.PredictorKind(*pred),
		MaxInsts:        *insts,
		CtxSwitchPeriod: *ctx,
	}
	switch *policy {
	case "baseline":
		opt.Policy = pipeline.PolicyNone
	case "svf":
		opt.Policy = pipeline.PolicySVF
	case "stackcache":
		opt.Policy = pipeline.PolicyStackCache
	case "rse":
		opt.Policy = pipeline.PolicyRSE
	default:
		fmt.Fprintf(os.Stderr, "svfsim: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	r, err := sim.Run(prof, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svfsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", r.Bench)
	fmt.Printf("machine          %s, %d DL1 ports, policy %s", mc.Name, opt.Machine.DL1Ports, *policy)
	if opt.Policy != pipeline.PolicyNone {
		fmt.Printf(" (%dB, %d ports)", *size, *stackPorts)
	}
	fmt.Println()
	fmt.Printf("predictor        %s\n", *pred)
	fmt.Println()
	p := r.Pipe
	fmt.Printf("cycles           %d\n", p.Cycles)
	fmt.Printf("instructions     %d\n", p.Committed)
	fmt.Printf("IPC              %.3f\n", p.IPC())
	fmt.Printf("branches         %d (mispredicted %d)\n", p.Branches, p.Mispredicts)
	fmt.Printf("mem refs         %d (dl1 %d, stack$ %d, svf %d)\n", p.MemRefs, p.DL1Refs, p.StackRefs, p.SVFRefs)
	fmt.Printf("lsq forwards     %d\n", p.Forwards)
	fmt.Printf("squashes         %d\n", p.Squashes)
	fmt.Printf("decode interlocks %d\n", p.Interlocks)
	fmt.Printf("port conflicts   dl1 %d, stack %d\n", p.DL1PortConflicts, p.StackPortConflicts)
	fmt.Printf("window stalls    ruu %d, lsq %d\n", p.RUUFullStalls, p.LSQFullStalls)
	fmt.Printf("context switches %d\n", p.CtxSwitches)
	fmt.Println()
	fmt.Printf("IL1              %d accesses, %.2f%% miss\n", r.IL1.Accesses, 100*r.IL1.MissRate())
	fmt.Printf("DL1              %d accesses, %.2f%% miss, %d B in, %d B out\n",
		r.DL1.Accesses, 100*r.DL1.MissRate(), r.DL1.BytesIn, r.DL1.BytesOut)
	fmt.Printf("UL2              %d accesses, %.2f%% miss\n", r.UL2.Accesses, 100*r.UL2.MissRate())
	fmt.Printf("memory           %d accesses\n", r.MemAccesses)
	if r.SVF != nil {
		s := r.SVF
		fmt.Println()
		fmt.Printf("SVF morphed      %d loads, %d stores\n", s.MorphedLoads, s.MorphedStores)
		fmt.Printf("SVF rerouted     %d loads, %d stores\n", s.ReroutedLoads, s.ReroutedStores)
		fmt.Printf("SVF fills        %d quadwords in\n", s.QuadWordsIn)
		fmt.Printf("SVF spills       %d quadwords out\n", s.QuadWordsOut)
		fmt.Printf("SVF kills        %d alloc, %d dealloc (writebacks avoided)\n", s.AllocKills, s.DeallocKills)
		if s.CtxSwitches > 0 {
			fmt.Printf("SVF ctx flush    %d B/switch\n", r.SVFCtxBytes)
		}
	}
	if r.SC != nil {
		fmt.Println()
		fmt.Printf("stack$           %d accesses, %.2f%% miss\n", r.SC.Accesses, 100*r.SC.MissRate())
		fmt.Printf("stack$ traffic   %d QW in, %d QW out\n", r.SCQWIn, r.SCQWOut)
		if p.CtxSwitches > 0 {
			fmt.Printf("stack$ ctx flush %d B/switch\n", r.SCCtxBytes)
		}
	}
	if r.RSE != nil {
		fmt.Println()
		fmt.Printf("RSE refs         %d register, %d memory\n", r.RSE.RegRefs, r.RSE.MemRefs)
		fmt.Printf("RSE events       %d overflows, %d underflows\n", r.RSE.Overflows, r.RSE.Underflows)
		fmt.Printf("RSE traffic      %d QW in, %d QW out\n", r.RSEQWIn, r.RSEQWOut)
		if p.CtxSwitches > 0 {
			fmt.Printf("RSE ctx flush    %d B/switch\n", r.RSECtxBytes)
		}
	}
}
